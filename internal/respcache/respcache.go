// Package respcache is a size-bounded LRU cache of fully encoded HTTP
// response bodies, built for the serve read path: rankings, cohort
// tables, hotspot lists and inspection plans are immutable once
// computed, so the JSON bytes can be encoded once and replayed for
// every later request. GET responses key on canonicalized query
// parameters; POST plan responses key on the decoded request fields
// (model, budget dimensions, cost parameters) rendered canonically via
// AppendKeyFloat, so textual aliases of one request share an entry.
//
// Three properties drive the design:
//
//   - Zero-allocation hits. GetOrFill takes the key as a []byte so
//     callers can assemble it in pooled scratch; the lookup uses Go's
//     map[string(bytes)] optimization and never retains the key on a
//     hit. Entries carry their ETag and Content-Length header values as
//     prebuilt []string slices, so serving a hit assigns three
//     preexisting slices into the header map and writes one body —
//     nothing escapes to the heap.
//   - Singleflight fills. Concurrent misses on one key share a single
//     fill call; the losers block on the winner's done channel. A fill
//     that returns an error is never inserted, so a failed upstream
//     (e.g. a training run that errored) cannot poison the cache.
//   - Bounded memory. Total body bytes are capped; inserting past the
//     cap evicts from the LRU tail. A body larger than the whole cap is
//     returned to the caller but never inserted.
//
// Hit/miss/eviction counters and byte/entry gauges register in an obs
// registry under respcache.<name>.* (see DESIGN.md, Observability).
package respcache

import (
	"container/list"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// Entry is one cached response: the encoded body plus the header values
// a handler needs to serve it. Body is shared between the cache and
// every reader and must be treated as immutable.
type Entry struct {
	// Body is the complete encoded response body.
	Body []byte
	// ETag is the strong validator sent in the ETag header and compared
	// against If-None-Match; empty disables conditional handling.
	ETag string

	// etagHdr and lenHdr are the header-map values, prepared once at
	// insert time so cache hits set headers with zero allocations.
	etagHdr []string
	lenHdr  []string
}

// SetHeaders installs the entry's ETag and Content-Length into h. On a
// cache hit the slices were prepared at insert time, so this performs
// no allocations; on the fill pass (before insertion) it falls back to
// building them.
func (e *Entry) SetHeaders(h http.Header) {
	if e.etagHdr == nil && e.lenHdr == nil {
		e.prepare()
	}
	if e.etagHdr != nil {
		h["Etag"] = e.etagHdr
	}
	h["Content-Length"] = e.lenHdr
}

// prepare builds the prebuilt header slices.
func (e *Entry) prepare() {
	if e.ETag != "" {
		e.etagHdr = []string{e.ETag}
	}
	e.lenHdr = []string{strconv.Itoa(len(e.Body))}
}

// BodyETag derives a strong ETag from the body bytes (FNV-1a), for
// responses with no natural content version. Deterministic: the same
// bytes always produce the same tag.
func BodyETag(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return `"b-` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// AppendKeyFloat appends the canonical shortest decimal rendering of f
// to a cache key, folding negative zero into zero — the keying helper
// for POST-body parameters, where `5`, `5.0` and `5e0` in a request
// body all decode to the same float64 and must share one cache entry.
func AppendKeyFloat(key []byte, f float64) []byte {
	if f == 0 {
		f = 0 // -0 and +0 compare equal; render both as "0"
	}
	return strconv.AppendFloat(key, f, 'g', -1, 64)
}

// call is the singleflight slot for one in-flight fill.
type call struct {
	done chan struct{}
	e    Entry
	err  error
}

// entry is the LRU node payload.
type entry struct {
	key string
	e   Entry
}

// Cache is a size-bounded LRU of encoded responses. All methods are
// safe for concurrent use.
type Cache struct {
	maxBytes int64

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	pending map[string]*call
	size    int64

	hits, misses, evictions *obs.Counter
	bytes, entries          *obs.Gauge
}

// New builds a cache capped at maxBytes of body data, registering its
// metrics as respcache.<name>.{hits,misses,evictions,bytes,entries} in
// reg (nil selects the default registry). maxBytes <= 0 panics: a cache
// that can hold nothing is a configuration bug, not a runtime state.
func New(name string, maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		panic("respcache: non-positive maxBytes")
	}
	if reg == nil {
		reg = obs.Default()
	}
	prefix := "respcache." + name + "."
	return &Cache{
		maxBytes:  maxBytes,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		pending:   make(map[string]*call),
		hits:      reg.Counter(prefix + "hits"),
		misses:    reg.Counter(prefix + "misses"),
		evictions: reg.Counter(prefix + "evictions"),
		bytes:     reg.Gauge(prefix + "bytes"),
		entries:   reg.Gauge(prefix + "entries"),
	}
}

// GetOrFill returns the cached entry for key, or runs fill exactly once
// to produce it — concurrent callers missing on the same key block on
// the in-flight fill and share its result. The key may point into
// caller-owned scratch: it is copied only on the miss path. A fill
// error is returned to every waiter and nothing is cached.
func (c *Cache) GetOrFill(key []byte, fill func() (Entry, error)) (Entry, error) {
	c.mu.Lock()
	if el, ok := c.items[string(key)]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry).e
		c.mu.Unlock()
		c.hits.Inc()
		return e, nil
	}
	ks := string(key)
	if cl, ok := c.pending[ks]; ok {
		c.mu.Unlock()
		c.misses.Inc()
		<-cl.done
		return cl.e, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.pending[ks] = cl
	c.mu.Unlock()
	c.misses.Inc()

	e, err := fill()
	if err == nil {
		e.prepare()
	}
	cl.e, cl.err = e, err

	c.mu.Lock()
	delete(c.pending, ks)
	if err == nil {
		c.insertLocked(ks, e)
	}
	c.mu.Unlock()
	close(cl.done)
	return e, err
}

// Add inserts a prepared entry under key, evicting from the LRU tail as
// needed. It is the insertion half of a Get/Add pair for handlers that
// must classify their fill errors into distinct HTTP statuses before
// caching (the POST /plan path): compute the response, then Add the
// successful encoding. An existing entry for the key is kept (both
// encode the same immutable content). Safe for concurrent use.
func (c *Cache) Add(key []byte, e Entry) {
	e.prepare()
	c.mu.Lock()
	c.insertLocked(string(key), e)
	c.mu.Unlock()
}

// Get returns the cached entry without filling. Like GetOrFill, the hit
// path performs zero allocations.
func (c *Cache) Get(key []byte) (Entry, bool) {
	c.mu.Lock()
	el, ok := c.items[string(key)]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry).e
	c.mu.Unlock()
	c.hits.Inc()
	return e, true
}

// insertLocked adds the entry and evicts from the LRU tail until the
// byte budget holds. Bodies larger than the whole budget are not
// inserted at all — caching them would just flush everything else.
func (c *Cache) insertLocked(key string, e Entry) {
	n := int64(len(e.Body))
	if n > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing fill for the same key already inserted; keep the
		// existing entry (they encode the same immutable content).
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, e: e})
	c.size += n
	for c.size > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.size -= int64(len(victim.e.Body))
		c.evictions.Inc()
	}
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(c.ll.Len()))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SizeBytes returns the summed body bytes currently held.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Keys returns every cached key, most recently used first — a test and
// debugging helper, not a hot-path API.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// PartitionBudget splits a global byte budget into n per-cache shares:
// equal division with the remainder going to the first share, and every
// share at least 1 byte so a partitioned New never hits the
// non-positive-budget panic even when a tiny budget meets many shards
// (a 1-byte cache holds nothing but stays well-formed).
func PartitionBudget(total int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	shares := make([]int64, n)
	each := total / int64(n)
	if each < 1 {
		each = 1
	}
	for i := range shares {
		shares[i] = each
	}
	if rem := total - each*int64(n); rem > 0 {
		shares[0] += rem
	}
	return shares
}
