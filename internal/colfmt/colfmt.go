// Package colfmt implements the PCOL binary columnar dataset format: the
// million-pipe data plane of the reproduction. A PCOL file carries one
// region — its pipe registry and failure-event log — as typed per-column
// blocks behind a magic/version header, with every section CRC-checksummed
// and low-cardinality string columns (class, material, coating, soil
// factors, failure mode) dictionary-encoded.
//
// On-disk layout (all integers little-endian):
//
//	"PCOL" | u16 version=1 | u16 flags=0
//	section*   — meta, the 15 pipe columns, the 5 event columns, end
//	each section:
//	  u8 kind | u8 column-id | u8 encoding | u8 reserved
//	  u64 rows | u64 payload-length | payload | u32 CRC-32 (IEEE) of payload
//
// Column encodings:
//
//	encF64  raw float64 bits, 8 bytes/row
//	encI32  int32, 4 bytes/row
//	encDict u16 dictionary size, length-prefixed dictionary strings
//	        (u16 length each), then one u8 code per row
//	encStr  u64 blob length, blob bytes, then rows+1 u32 offsets into the
//	        blob (unique strings such as pipe IDs)
//	encU32  uint32, 4 bytes/row (event→pipe row references)
//
// The reader (Read) streams the file in one pass into a Dataset — a
// struct-of-arrays mirror of the registry — with O(columns) allocations:
// one typed slice per column plus a reused section scratch buffer, never
// per-row boxes. Events reference pipes by registry row index, so no
// ID-keyed map is needed to join them. Dataset implements feature.Source,
// which lets feature.Builder fill its flat row-major Set backing straight
// from the columns without materializing []dataset.Pipe; because the same
// Builder arithmetic runs over either source, columnar and CSV loads of
// the same data yield bit-identical feature matrices.
//
// Open is the format-sniffing loader the CLIs share: a directory with a
// dataset.col file (or a bare .col file path) loads columnar, any other
// directory falls back to the CSV reader in internal/dataset.
package colfmt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// Magic is the 4-byte file signature.
const Magic = "PCOL"

// Version is the current format version; readers reject anything newer.
const Version = 1

// DatasetFile is the conventional columnar file name inside a dataset
// directory; Open prefers it over the CSV trio when both are present.
const DatasetFile = "dataset.col"

// Section kinds.
const (
	secMeta  = 1
	secPipe  = 2
	secEvent = 3
	secEnd   = 0xFF
)

// Column encodings.
const (
	encF64  = 1
	encI32  = 2
	encDict = 3
	encStr  = 4
	encU32  = 5
)

// Pipe column IDs, in file order.
const (
	colPipeID = iota
	colPipeClass
	colPipeMaterial
	colPipeCoating
	colPipeDiameter
	colPipeLength
	colPipeLaidYear
	colPipeSoilCorr
	colPipeSoilExp
	colPipeSoilGeo
	colPipeSoilMap
	colPipeTraffic
	colPipeX
	colPipeY
	colPipeSegments
	numPipeCols
)

// Event column IDs, in file order.
const (
	colEventPipe = iota
	colEventSegment
	colEventYear
	colEventDay
	colEventMode
	numEventCols
)

// maxRows bounds the declared registry and event-log sizes; anything
// larger is a corrupt or hostile header, not a plausible utility.
const maxRows = 1 << 31

// PipeColumns is the registry as a struct of arrays; index i across every
// slice is one pipe, in the same order a materialized Network.Pipes()
// would present it. String columns share backing: dictionary-encoded
// columns point at their dictionary entries, IDs slice one blob.
type PipeColumns struct {
	ID              []string
	Class           []dataset.PipeClass
	Material        []dataset.Material
	Coating         []dataset.Coating
	DiameterMM      []float64
	LengthM         []float64
	LaidYear        []int32
	SoilCorrosivity []string
	SoilExpansivity []string
	SoilGeology     []string
	SoilMap         []string
	DistToTrafficM  []float64
	X               []float64
	Y               []float64
	Segments        []int32
}

// EventColumns is the failure log as a struct of arrays. Pipe holds
// registry row indices (not IDs), which is what makes columnar history
// joins map-free.
type EventColumns struct {
	Pipe    []uint32
	Segment []int32
	Year    []int32
	Day     []int32
	Mode    []dataset.FailureMode
}

// Dataset is one region in columnar form: the decoded contents of a PCOL
// file, or the columnar view of a Network built with FromNetwork. It
// implements feature.Source, so feature.Builder can encode design
// matrices from it directly.
type Dataset struct {
	Region                   string
	ObservedFrom, ObservedTo int

	Pipes  PipeColumns
	Events EventColumns

	// CSR-style per-pipe event index: pipe i's event years are
	// evYear[evStart[i]:evStart[i+1]], grouped (not sorted) by pipe.
	evStart []uint32
	evYear  []int32
}

// NumPipes returns the registry size.
func (d *Dataset) NumPipes() int { return len(d.Pipes.ID) }

// NumEvents returns the failure-log size.
func (d *Dataset) NumEvents() int { return len(d.Events.Pipe) }

// LaidYearAt implements feature.Source.
func (d *Dataset) LaidYearAt(i int) int { return int(d.Pipes.LaidYear[i]) }

// PipeAt implements feature.Source: it assembles pipe i from the columns.
// The string fields share backing with the dataset's dictionaries and ID
// blob, so no allocation happens.
func (d *Dataset) PipeAt(i int, p *dataset.Pipe) {
	c := &d.Pipes
	p.ID = c.ID[i]
	p.Class = c.Class[i]
	p.Material = c.Material[i]
	p.Coating = c.Coating[i]
	p.DiameterMM = c.DiameterMM[i]
	p.LengthM = c.LengthM[i]
	p.LaidYear = int(c.LaidYear[i])
	p.SoilCorrosivity = c.SoilCorrosivity[i]
	p.SoilExpansivity = c.SoilExpansivity[i]
	p.SoilGeology = c.SoilGeology[i]
	p.SoilMap = c.SoilMap[i]
	p.DistToTrafficM = c.DistToTrafficM[i]
	p.X = c.X[i]
	p.Y = c.Y[i]
	p.Segments = int(c.Segments[i])
}

// FailureCountAt implements feature.Source: failures of pipe i with Year
// in [from, to].
func (d *Dataset) FailureCountAt(i, from, to int) int {
	n := 0
	for _, y := range d.evYear[d.evStart[i]:d.evStart[i+1]] {
		if yy := int(y); yy >= from && yy <= to {
			n++
		}
	}
	return n
}

// FailedInYearAt implements feature.Source.
func (d *Dataset) FailedInYearAt(i, year int) bool {
	for _, y := range d.evYear[d.evStart[i]:d.evStart[i+1]] {
		if int(y) == year {
			return true
		}
	}
	return false
}

// buildEventIndex (re)derives the per-pipe event index from the columns.
// Three allocations, O(pipes + events) time, no maps.
func (d *Dataset) buildEventIndex() {
	n := d.NumPipes()
	counts := make([]uint32, n+1)
	for _, p := range d.Events.Pipe {
		counts[p+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	d.evStart = counts
	d.evYear = make([]int32, len(d.Events.Pipe))
	fill := make([]uint32, n)
	copy(fill, counts[:n])
	for e, p := range d.Events.Pipe {
		d.evYear[fill[p]] = d.Events.Year[e]
		fill[p]++
	}
}

// check validates the cross-column invariants the CSV parsers enforce
// row-by-row: non-empty unique pipe IDs, finite floats, and event pipe
// references inside the registry. It allocates O(1) scratch (a sort
// index), keeping the loading path's allocation count row-independent.
func (d *Dataset) check() error {
	n := d.NumPipes()
	c := &d.Pipes
	for i := 0; i < n; i++ {
		if c.ID[i] == "" {
			return fmt.Errorf("colfmt: pipe row %d has empty ID", i)
		}
	}
	for _, col := range []struct {
		name string
		v    []float64
	}{
		{"diameter_mm", c.DiameterMM}, {"length_m", c.LengthM},
		{"dist_traffic_m", c.DistToTrafficM}, {"x", c.X}, {"y", c.Y},
	} {
		for i, v := range col.v {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("colfmt: pipe row %d: non-finite %s", i, col.name)
			}
		}
	}
	// Duplicate-ID detection without an ID map: sort a row index by ID
	// and compare neighbours.
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return c.ID[idx[a]] < c.ID[idx[b]] })
	for i := 1; i < n; i++ {
		if c.ID[idx[i]] == c.ID[idx[i-1]] {
			return fmt.Errorf("colfmt: duplicate pipe ID %q (rows %d and %d)",
				c.ID[idx[i]], idx[i-1], idx[i])
		}
	}
	for e, p := range d.Events.Pipe {
		if int(p) >= n {
			return fmt.Errorf("colfmt: event %d references pipe row %d outside registry of %d", e, p, n)
		}
	}
	return nil
}

// FromNetwork builds the columnar view of a network. Event rows keep the
// network's (Year, Day, PipeID) order; pipe rows keep registry order.
func FromNetwork(net *dataset.Network) (*Dataset, error) {
	if net == nil {
		return nil, fmt.Errorf("colfmt: nil network")
	}
	pipes := net.Pipes()
	fails := net.Failures()
	d := &Dataset{
		Region:       net.Region,
		ObservedFrom: net.ObservedFrom,
		ObservedTo:   net.ObservedTo,
		Pipes: PipeColumns{
			ID:              make([]string, len(pipes)),
			Class:           make([]dataset.PipeClass, len(pipes)),
			Material:        make([]dataset.Material, len(pipes)),
			Coating:         make([]dataset.Coating, len(pipes)),
			DiameterMM:      make([]float64, len(pipes)),
			LengthM:         make([]float64, len(pipes)),
			LaidYear:        make([]int32, len(pipes)),
			SoilCorrosivity: make([]string, len(pipes)),
			SoilExpansivity: make([]string, len(pipes)),
			SoilGeology:     make([]string, len(pipes)),
			SoilMap:         make([]string, len(pipes)),
			DistToTrafficM:  make([]float64, len(pipes)),
			X:               make([]float64, len(pipes)),
			Y:               make([]float64, len(pipes)),
			Segments:        make([]int32, len(pipes)),
		},
		Events: EventColumns{
			Pipe:    make([]uint32, len(fails)),
			Segment: make([]int32, len(fails)),
			Year:    make([]int32, len(fails)),
			Day:     make([]int32, len(fails)),
			Mode:    make([]dataset.FailureMode, len(fails)),
		},
	}
	for i := range pipes {
		p := &pipes[i]
		c := &d.Pipes
		c.ID[i] = p.ID
		c.Class[i] = p.Class
		c.Material[i] = p.Material
		c.Coating[i] = p.Coating
		c.DiameterMM[i] = p.DiameterMM
		c.LengthM[i] = p.LengthM
		c.LaidYear[i] = int32(p.LaidYear)
		c.SoilCorrosivity[i] = p.SoilCorrosivity
		c.SoilExpansivity[i] = p.SoilExpansivity
		c.SoilGeology[i] = p.SoilGeology
		c.SoilMap[i] = p.SoilMap
		c.DistToTrafficM[i] = p.DistToTrafficM
		c.X[i] = p.X
		c.Y[i] = p.Y
		c.Segments[i] = int32(p.Segments)
	}
	for e := range fails {
		f := &fails[e]
		row := net.PipeIndex(f.PipeID)
		if row < 0 {
			return nil, fmt.Errorf("colfmt: failure %d references unknown pipe %q", e, f.PipeID)
		}
		d.Events.Pipe[e] = uint32(row)
		d.Events.Segment[e] = int32(f.Segment)
		d.Events.Year[e] = int32(f.Year)
		d.Events.Day[e] = int32(f.Day)
		d.Events.Mode[e] = f.Mode
	}
	d.buildEventIndex()
	return d, nil
}

// Failures materializes the event log in stored order (fresh slice; safe
// for the caller to sort or mutate).
func (d *Dataset) Failures() []dataset.Failure {
	out := make([]dataset.Failure, d.NumEvents())
	for e := range out {
		out[e] = dataset.Failure{
			PipeID:  d.Pipes.ID[d.Events.Pipe[e]],
			Segment: int(d.Events.Segment[e]),
			Year:    int(d.Events.Year[e]),
			Day:     int(d.Events.Day[e]),
			Mode:    d.Events.Mode[e],
		}
	}
	return out
}

// Network materializes the dataset into a validated *dataset.Network —
// the compatibility path for consumers that need the row-oriented model
// (serving, planning, risk maps). Fresh slices every call; the columnar
// fast path (feature.Source) never goes through here.
func (d *Dataset) Network() (*dataset.Network, error) {
	pipes := make([]dataset.Pipe, d.NumPipes())
	for i := range pipes {
		d.PipeAt(i, &pipes[i])
	}
	net := dataset.NewNetwork(d.Region, d.ObservedFrom, d.ObservedTo, pipes, d.Failures())
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("colfmt: materialized network failed validation: %w", err)
	}
	return net, nil
}
