package stats

import (
	"math"
	"testing"
)

func TestPairedTTestKnownValue(t *testing.T) {
	// Hand-computed paired sample: diffs = {2,1,1,3,1}, mean 1.6,
	// sd = sqrt(0.8), so t = 1.6/(sqrt(0.8)/sqrt(5)) = 4 exactly, df = 4.
	// One-sided p = 1 - pt(4, 4) = 0.0080650.
	x := []float64{12, 14, 11, 15, 13}
	y := []float64{10, 13, 10, 12, 12}
	r, err := PairedTTest(x, y, Greater, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.T, 4, 1e-12) {
		t.Fatalf("t = %v", r.T)
	}
	if r.DF != 4 {
		t.Fatalf("df = %v", r.DF)
	}
	if !almostEqual(r.P, 0.00806504495004623, 1e-9) {
		t.Fatalf("p = %v", r.P)
	}
	if !r.Significant {
		t.Fatal("should be significant at 0.05")
	}
	if r.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestPairedTTestTwoSidedDoublesOneSided(t *testing.T) {
	x := []float64{1.2, 0.9, 1.4, 1.1, 1.3, 0.8}
	y := []float64{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}
	one, err := PairedTTest(x, y, Greater, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	two, err := PairedTTest(x, y, TwoSided, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if one.MeanDiff <= 0 {
		t.Fatal("mean diff should be positive here")
	}
	if !almostEqual(two.P, 2*one.P, 1e-10) {
		t.Fatalf("two-sided %v != 2 * one-sided %v", two.P, one.P)
	}
}

func TestPairedTTestLessAlternative(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 3, 4}
	r, err := PairedTTest(x, y, Less, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.T >= 0 {
		t.Fatalf("t should be negative, got %v", r.T)
	}
	if r.P >= 0.5 {
		t.Fatalf("p should favor the Less alternative, got %v", r.P)
	}
}

func TestPairedTTestIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	r, err := PairedTTest(x, x, TwoSided, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.T != 0 {
		t.Fatalf("t = %v, want 0", r.T)
	}
	if r.Significant {
		t.Fatal("identical samples must not be significant")
	}
}

func TestPairedTTestConstantPositiveDiff(t *testing.T) {
	// Zero variance in diffs with positive mean: t = +Inf, p -> 0.
	x := []float64{2, 3, 4}
	y := []float64{1, 2, 3}
	r, err := PairedTTest(x, y, Greater, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.T, 1) {
		t.Fatalf("t = %v, want +Inf", r.T)
	}
	if r.P != 0 || !r.Significant {
		t.Fatalf("p = %v, want 0 (significant)", r.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}, Greater, 0.05); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}, Greater, 0.05); err == nil {
		t.Fatal("n<2 must error")
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{2, 3}, Alternative(99), 0.05); err == nil {
		t.Fatal("unknown alternative must error")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	g := NewRNG(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	lo, hi, err := BootstrapCI(g, xs, 0.95, 500)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("interval [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("interval [%v, %v] suspiciously wide", lo, hi)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	g := NewRNG(12)
	if _, _, err := BootstrapCI(g, nil, 0.95, 100); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, _, err := BootstrapCI(g, []float64{1}, 1.5, 100); err == nil {
		t.Fatal("bad level must error")
	}
	if _, _, err := BootstrapCI(g, []float64{1}, 0.95, 1); err == nil {
		t.Fatal("too few resamples must error")
	}
}
