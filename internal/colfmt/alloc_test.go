package colfmt

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
)

// encodedAt returns a PCOL byte image of region A scaled to the given
// fraction, for alloc measurements at two different row counts.
func encodedAt(t *testing.T, scale float64) []byte {
	t.Helper()
	d, err := FromNetwork(testNetwork(t, scale, 11))
	if err != nil {
		t.Fatal(err)
	}
	return encode(t, d)
}

// TestReadAllocsRowIndependent enforces the O(columns) loading guarantee:
// decoding a registry 5x larger must cost exactly the same number of
// allocations. This is the alloc-regression gate wired into `make verify`.
func TestReadAllocsRowIndependent(t *testing.T) {
	small := encodedAt(t, 0.05)
	large := encodedAt(t, 0.25)

	measure := func(raw []byte) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Read(bytes.NewReader(raw), int64(len(raw))); err != nil {
				t.Fatalf("read: %v", err)
			}
		})
	}
	smallAllocs := measure(small)
	largeAllocs := measure(large)
	if smallAllocs != largeAllocs {
		t.Fatalf("allocation count grew with rows: %.0f at %d bytes vs %.0f at %d bytes",
			smallAllocs, len(small), largeAllocs, len(large))
	}
	// One typed slice per column plus bounded per-section scratch; leave
	// headroom for dictionary entries but stay firmly size-independent.
	const cap = 200
	if largeAllocs > cap {
		t.Fatalf("loading allocates %.0f times, want <= %d", largeAllocs, cap)
	}
}

// TestIngestAllocsRowIndependent extends the guarantee through the feature
// pipeline: filling the dense feature.Set backing straight from the columns
// allocates the same number of times regardless of registry size.
func TestIngestAllocsRowIndependent(t *testing.T) {
	measure := func(scale float64) float64 {
		raw := encodedAt(t, scale)
		d, err := Read(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := feature.NewBuilderFromSource(d, feature.Options{Groups: feature.AllGroups(), Standardize: true})
		if err != nil {
			t.Fatal(err)
		}
		split := dataset.Split{
			TrainFrom: d.ObservedFrom,
			TrainTo:   d.ObservedTo - 1,
			TestYear:  d.ObservedTo,
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := b.TrainSet(split); err != nil {
				t.Fatalf("train set: %v", err)
			}
			if _, err := b.TestSet(split); err != nil {
				t.Fatalf("test set: %v", err)
			}
		})
	}
	smallAllocs := measure(0.05)
	largeAllocs := measure(0.25)
	if smallAllocs != largeAllocs {
		t.Fatalf("feature-ingest allocation count grew with rows: %.0f vs %.0f", smallAllocs, largeAllocs)
	}
}
