package tune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/stats"
)

// noisySet builds a two-class dataset where only feature 0 is informative,
// so heavy regularization (which shrinks the informative weight less than
// it suppresses noise) separates candidates measurably.
func noisySet(seed int64, n, dim int) *feature.Set {
	rng := stats.NewRNG(seed)
	s := &feature.Set{}
	for j := 0; j < dim; j++ {
		s.Names = append(s.Names, "f")
	}
	for i := 0; i < n; i++ {
		pos := rng.Bernoulli(0.25)
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Norm()
		}
		if pos {
			row[0] += 1.5
		}
		s.X = append(s.X, row)
		s.Label = append(s.Label, pos)
		s.Age = append(s.Age, 10)
		s.LengthM = append(s.LengthM, 100)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	return s
}

func svmCandidates() []Candidate {
	return []Candidate{
		{Label: "epochs=1", Make: func() core.Model {
			return core.NewRankSVM(core.RankSVMConfig{Seed: 1, Epochs: 1, PairsPerEpoch: 50})
		}},
		{Label: "epochs=20", Make: func() core.Model {
			return core.NewRankSVM(core.RankSVMConfig{Seed: 1, Epochs: 20})
		}},
	}
}

func TestSelectByCVRanksCandidates(t *testing.T) {
	train := noisySet(1, 1200, 8)
	results, err := SelectByCV(train, svmCandidates(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.FoldAUCs) != 4 {
			t.Fatalf("%s folds = %d", r.Label, len(r.FoldAUCs))
		}
		if r.MeanAUC < 0.5 || r.MeanAUC > 1 {
			t.Fatalf("%s mean AUC %v", r.Label, r.MeanAUC)
		}
	}
	// Sorted best-first.
	if results[0].MeanAUC < results[1].MeanAUC {
		t.Fatal("results not sorted")
	}
	// The well-trained candidate should win against the starved one.
	if results[0].Label != "epochs=20" {
		t.Fatalf("winner %s, want epochs=20 (AUCs %v vs %v)",
			results[0].Label, results[0].MeanAUC, results[1].MeanAUC)
	}
}

func TestBestReturnsWinner(t *testing.T) {
	train := noisySet(2, 800, 6)
	best, results, err := Best(train, svmCandidates(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Label != results[0].Label {
		t.Fatalf("best %s vs results[0] %s", best.Label, results[0].Label)
	}
	if best.Make == nil {
		t.Fatal("winner has no factory")
	}
	m := best.Make()
	if err := m.Fit(train); err != nil {
		t.Fatalf("winner cannot be retrained: %v", err)
	}
}

func TestSelectByCVDeterminism(t *testing.T) {
	train := noisySet(3, 600, 5)
	r1, err := SelectByCV(train, svmCandidates(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SelectByCV(train, svmCandidates(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].MeanAUC != r2[i].MeanAUC {
			t.Fatal("CV not deterministic")
		}
	}
}

func TestSelectByCVErrors(t *testing.T) {
	if _, err := SelectByCV(nil, svmCandidates(), 3, 1); err == nil {
		t.Fatal("nil train must error")
	}
	train := noisySet(4, 100, 3)
	if _, err := SelectByCV(train, nil, 3, 1); err == nil {
		t.Fatal("no candidates must error")
	}
	if _, err := SelectByCV(train, svmCandidates(), 1, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	// A candidate whose fit fails propagates the error.
	bad := []Candidate{{Label: "bad", Make: func() core.Model {
		return core.NewRankBoost(core.RankBoostConfig{})
	}}}
	empty := &feature.Set{}
	if _, err := SelectByCV(empty, bad, 2, 1); err == nil {
		t.Fatal("empty set must error")
	}
}
