package dataset

// Sharding a district-structured network: the synthetic nation/metro
// presets lay pipes out as contiguous ID blocks per district
// (REGION-Dnnn-SEQ), which makes districts the natural unit for
// splitting one big network into independently served region shards.
// SplitDistricts cuts the district sequence into k contiguous groups of
// near-equal pipe count, so each shard keeps whole districts (spatial
// features like hotspot clustering stay intra-shard) and the
// concatenation of the shards is exactly the original network.

import (
	"fmt"
	"strings"
)

// DistrictOf extracts the district token from a district-structured
// pipe ID of the form <region>-D<digits>-<digits> (e.g.
// "metro-D007-0001234" → "D007"). The region part may itself contain
// hyphens; the district is the second-to-last hyphen-separated field.
// ok is false for IDs not in this shape.
func DistrictOf(id string) (district string, ok bool) {
	last := strings.LastIndexByte(id, '-')
	if last <= 0 {
		return "", false
	}
	seq := id[last+1:]
	if !allDigits(seq) {
		return "", false
	}
	prev := strings.LastIndexByte(id[:last], '-')
	if prev < 1 { // no separator, or an empty region part
		return "", false
	}
	district = id[prev+1 : last]
	if len(district) < 2 || district[0] != 'D' || !allDigits(district[1:]) {
		return "", false
	}
	return district, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// SplitDistricts partitions n into k networks along district
// boundaries. Districts are taken in first-appearance order (the
// presets generate them as contiguous pipe blocks) and dealt into k
// contiguous groups balanced by pipe count; each shard gets the region
// name "<region>/sNN" (NN = shard index from 01), its districts' pipes
// in original order, and exactly the failures of those pipes.
//
// Every pipe ID must be district-structured (see DistrictOf) and there
// must be at least k districts; either violation is an error, since a
// caller asking to shard a dataset that cannot be sharded should hear
// about it rather than silently serve one lopsided region.
func SplitDistricts(n *Network, k int) ([]*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: split into %d shards: need at least 2", k)
	}
	pipes := n.Pipes()
	// District list in first-appearance order, with each district's pipe
	// count. IDs arrive as contiguous blocks, so "last seen" catches the
	// common case without a map lookup per pipe.
	var (
		order  []string
		counts []int
		seen   = make(map[string]int)
		lastD  string
		lastIx = -1
	)
	for i := range pipes {
		d, ok := DistrictOf(pipes[i].ID)
		if !ok {
			return nil, fmt.Errorf("dataset: split %q: pipe %q has no district-structured ID", n.Region, pipes[i].ID)
		}
		if d != lastD || lastIx < 0 {
			ix, ok := seen[d]
			if !ok {
				ix = len(order)
				seen[d] = ix
				order = append(order, d)
				counts = append(counts, 0)
			}
			lastD, lastIx = d, ix
		}
		counts[lastIx]++
	}
	if len(order) < k {
		return nil, fmt.Errorf("dataset: split %q into %d shards: only %d districts", n.Region, k, len(order))
	}

	// Deal districts into k contiguous groups, balancing pipe counts:
	// each group takes districts until it reaches its proportional share
	// of the remaining pipes, always leaving enough districts for the
	// remaining groups.
	groupOf := make(map[string]int, len(order))
	remaining := len(pipes)
	di := 0
	for g := 0; g < k; g++ {
		target := remaining / (k - g)
		took, gotPipes := 0, 0
		for di < len(order) {
			// Leave one district for each group still to come; the last
			// group takes everything left.
			if left := len(order) - di; took > 0 && g < k-1 && left <= k-g-1 {
				break
			}
			if took > 0 && g < k-1 && gotPipes+counts[di]/2 >= target {
				break
			}
			groupOf[order[di]] = g
			gotPipes += counts[di]
			took++
			di++
		}
		remaining -= gotPipes
	}

	// Materialize the shard networks in group order.
	shardPipes := make([][]Pipe, k)
	pipeGroup := make(map[string]int, len(pipes))
	for i := range pipes {
		d, _ := DistrictOf(pipes[i].ID)
		g := groupOf[d]
		shardPipes[g] = append(shardPipes[g], pipes[i])
		pipeGroup[pipes[i].ID] = g
	}
	shardFails := make([][]Failure, k)
	for _, f := range n.Failures() {
		if g, ok := pipeGroup[f.PipeID]; ok {
			shardFails[g] = append(shardFails[g], f)
		}
	}
	out := make([]*Network, k)
	for g := 0; g < k; g++ {
		region := fmt.Sprintf("%s/s%02d", n.Region, g+1)
		out[g] = NewNetwork(region, n.ObservedFrom, n.ObservedTo, shardPipes[g], shardFails[g])
	}
	return out, nil
}
