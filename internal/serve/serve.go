// Package serve exposes a trained-model service over HTTP: a water utility
// integration point that loads one or more regional networks, trains
// models on demand, and serves rankings, per-pipe risk lookups and
// budget-constrained inspection plans as JSON. Each region is an
// isolated shard (see shard.go); bulk endpoints fan one request across
// shards and stream NDJSON back (see bulk.go); a background scheduler
// keeps shards warm (see sched.go). It is deliberately stdlib-only
// (net/http with Go 1.22 method patterns).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/respcache"
)

// DefaultCacheBytes is the response-cache budget a new Server starts
// with; cmd/pipeserve overrides it via the -cache-mb flag.
const DefaultCacheBytes = 32 << 20

// Server wires one or more regional networks into an http.Handler.
// All handlers are safe for concurrent use; model training is
// singleflighted per (shard, model name): the first request trains,
// concurrent requests for the same model block on the in-flight run and
// share its outcome instead of being refused.
//
// The read path is lock-free: each shard's trained models live in an
// immutable copy-on-write map behind an atomic pointer (published under
// the shard mutex, read with a single atomic load), each pointing at a
// frozen modelSnapshot (see snapshot.go). Encoded
// ranking/cohort/hotspot responses are replayed from per-shard
// size-bounded respcache LRUs, with 304 Not-Modified served off the
// snapshot ETag.
//
// Every route is wrapped in metrics middleware (request counter, latency
// histogram, error counter, in-flight gauge) recording into the default
// obs registry, which GET /metrics exposes as a JSON snapshot; DESIGN.md
// documents the catalog.
type Server struct {
	// shards is the immutable fan-out order; byRegion indexes it by
	// region name; def (= shards[0]) serves every request that names no
	// region, so a single-region deployment behaves exactly as before.
	shards   []*shard
	byRegion map[string]*shard
	def      *shard

	log *log.Logger

	// trainFn runs one training pass on one shard; it defaults to
	// (*Server).train and is a seam for tests that need to inject
	// training failures, panics or hangs. It must honor ctx cancellation
	// for prompt aborts.
	trainFn func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error)

	metrics serveMetrics

	// lifecycle is the context every training run (and the rebuild
	// scheduler) derives from; BeginShutdown cancels it, aborting
	// in-flight training.
	lifecycle       context.Context
	cancelLifecycle context.CancelFunc
	// draining flips once at BeginShutdown: /readyz turns 503 and
	// sheddable routes refuse new work with 503 + Retry-After while the
	// http.Server drains connections.
	draining atomic.Bool

	// maxInflight caps concurrently served requests on sheddable routes
	// (0 = unlimited); inflightReqs is the current count against the cap.
	maxInflight int64
	inflightReqs atomic.Int64
	// requestTimeout bounds each sheddable request's context (0 = none).
	requestTimeout time.Duration

	// stateDir, when non-empty, is the root under which trained linear
	// models are persisted for warm restarts (see state.go); each shard
	// holds its own subdirectory in shard.stateDir.
	stateDir string

	// cacheBytes is the global response-cache budget, partitioned
	// equally across shards (respcache.PartitionBudget).
	cacheBytes int64

	// defaultModel is the model a plan request with no "model" field
	// resolves to, resolved once at construction — pipefail.Models()
	// allocates its slice per call, which the zero-alloc plan path
	// cannot afford. Kept as bytes because that path splices it into
	// pooled key scratch.
	defaultModel []byte

	// pool fans bulk-request misses and scheduler rebuilds across
	// shards; sized to GOMAXPROCS at construction.
	pool parallel.Pool

	// routes records every registered route and whether it passes the
	// shed/deadline middleware; a test locks the list so new routes
	// cannot silently bypass shedding.
	routes []routeSpec

	// eventsOn flips once SetEventLog wires the streaming-ingest WALs;
	// POST /api/events answers 503 until then (see events.go).
	eventsOn bool

	// Rebuild scheduler state (see sched.go).
	schedOn       atomic.Bool
	schedInterval time.Duration
	schedPool     parallel.Pool
}

// routeSpec is one registered route: its mux pattern, its metric name,
// and whether it passes the shed/deadline middleware (everything but
// the liveness/readiness probes must).
type routeSpec struct {
	pattern   string
	name      string
	sheddable bool
}

// serveMetrics caches the singleflight/in-flight metric handles so the
// request path never does a registry lookup.
type serveMetrics struct {
	inflight       *obs.Gauge
	sfHits         *obs.Counter // waiters that joined an in-flight run
	sfMisses       *obs.Counter // requests that started a training run
	sfCached       *obs.Counter // requests served from the trained cache
	trainFailures  *obs.Counter
	trainPanics    *obs.Counter // training panics contained into failures
	trainCancelled *obs.Counter // training runs aborted via context
	handlerPanics  *obs.Counter // handler panics recovered into 500s
	shedCapacity   *obs.Counter // 503s from the in-flight cap
	shedDraining   *obs.Counter // 503s issued while draining
	planCacheHits    *obs.Counter // /api/plan responses replayed from cache
	planCacheMisses  *obs.Counter // /api/plan responses computed and cached
	planPrefixBuilds *obs.Counter // plan.BuildPrefix runs for non-default cost models
	stateSaved     *obs.Counter // models persisted to the state dir
	stateRestored  *obs.Counter // models reloaded on warm restart
	stateSaveErrs  *obs.Counter // failed persistence attempts
	stateQuarantined *obs.Counter // unreadable/stale state files set aside
	bulkSegments  *obs.Counter // NDJSON lines written by the bulk endpoints
	bulkSegErrs   *obs.Counter // bulk segments that became error lines
	eventsAccepted       *obs.Counter // ingested events acknowledged durable
	eventsDuplicates     *obs.Counter // ingested events absorbed by ID dedup
	eventsRejected       *obs.Counter // ingest requests refused by validation
	eventsBackpressure   *obs.Counter // ingest 429s from WAL backlog
	eventsFailed         *obs.Counter // ingest 503s from WAL append/sync errors
	eventsReplayRejected *obs.Counter // replayed records skipped by validation
	schedPasses   *obs.Counter // rebuild-scheduler sweeps over the shards
	schedRebuilds *obs.Counter // scheduled retrains started
	schedFailures *obs.Counter // scheduled retrains that failed
}

func newServeMetrics() serveMetrics {
	reg := obs.Default()
	return serveMetrics{
		inflight:       reg.Gauge("serve.inflight"),
		sfHits:         reg.Counter("serve.train.singleflight.hits"),
		sfMisses:       reg.Counter("serve.train.singleflight.misses"),
		sfCached:       reg.Counter("serve.train.cached_hits"),
		trainFailures:  reg.Counter("serve.train.failures"),
		trainPanics:    reg.Counter("serve.train.panics"),
		trainCancelled: reg.Counter("serve.train.cancelled"),
		handlerPanics:  reg.Counter("serve.panics.recovered"),
		shedCapacity:   reg.Counter("serve.shed.capacity"),
		shedDraining:   reg.Counter("serve.shed.draining"),
		planCacheHits:    reg.Counter("serve.plan.cache_hits"),
		planCacheMisses:  reg.Counter("serve.plan.cache_misses"),
		planPrefixBuilds: reg.Counter("serve.plan.prefix_builds"),
		stateSaved:     reg.Counter("serve.state.saved"),
		stateRestored:  reg.Counter("serve.state.restored"),
		stateSaveErrs:  reg.Counter("serve.state.save_errors"),
		stateQuarantined: reg.Counter("serve.state.quarantined"),
		bulkSegments:  reg.Counter("serve.bulk.segments"),
		bulkSegErrs:   reg.Counter("serve.bulk.segment_errors"),
		eventsAccepted:       reg.Counter("serve.events.accepted"),
		eventsDuplicates:     reg.Counter("serve.events.duplicates"),
		eventsRejected:       reg.Counter("serve.events.rejected"),
		eventsBackpressure:   reg.Counter("serve.events.backpressure"),
		eventsFailed:         reg.Counter("serve.events.failed"),
		eventsReplayRejected: reg.Counter("serve.events.replay_rejected"),
		schedPasses:   reg.Counter("serve.sched.passes"),
		schedRebuilds: reg.Counter("serve.sched.rebuilds"),
		schedFailures: reg.Counter("serve.sched.failures"),
	}
}

// trainJob is the singleflight slot for one model name: done is closed
// when the training run finishes, after tm and err are set. waiters
// (guarded by Server.mu) counts the requests blocked on the run; when the
// last one abandons it — client disconnect or request deadline — cancel
// fires and the run aborts instead of burning CPU for nobody.
type trainJob struct {
	done    chan struct{}
	tm      *modelSnapshot
	err     error
	cancel  context.CancelFunc
	waiters int
}

// New builds a single-shard Server around one network. Options mirror
// pipefail.NewPipeline; logger may be nil (logs are discarded into the
// default logger then).
func New(net *pipefail.Network, logger *log.Logger, opts ...pipefail.PipelineOption) (*Server, error) {
	return NewMulti([]*pipefail.Network{net}, logger, opts...)
}

// NewMulti builds a Server with one shard per network, in the given
// (deterministic) fan-out order. Duplicate region names are a
// configuration error and fail construction — a silent last-write-wins
// registry would serve one region's data under another's name. The
// response-cache budget is partitioned equally across the shards.
func NewMulti(nets []*pipefail.Network, logger *log.Logger, opts ...pipefail.PipelineOption) (*Server, error) {
	if len(nets) == 0 {
		return nil, errors.New("serve: no networks given")
	}
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		log:          logger,
		metrics:      newServeMetrics(),
		defaultModel: []byte(pipefail.Models()[0]),
		byRegion:     make(map[string]*shard, len(nets)),
		cacheBytes:   DefaultCacheBytes,
		pool:         parallel.New(0),
	}
	s.lifecycle, s.cancelLifecycle = context.WithCancel(context.Background())
	budgets := respcache.PartitionBudget(DefaultCacheBytes, len(nets))
	for i, n := range nets {
		if prev, dup := s.byRegion[n.Region]; dup {
			return nil, fmt.Errorf("serve: duplicate region %q (inputs %d and %d)",
				n.Region, s.shardIndex(prev)+1, i+1)
		}
		sh, err := newShard(n, s.cacheNameFor(n.Region, len(nets)), budgets[i], opts...)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
		s.byRegion[n.Region] = sh
	}
	s.def = s.shards[0]
	s.trainFn = s.train
	return s, nil
}

// cacheNameFor keeps the single-shard cache under the historical
// "serve" metric prefix (respcache.serve.*); multi-shard deployments
// get one series per region (respcache.serve.<region>.*).
func (s *Server) cacheNameFor(region string, n int) string {
	if n == 1 {
		return "serve"
	}
	return "serve." + obs.SanitizeMetricName(region)
}

// shardIndex returns sh's position in the fan-out order.
func (s *Server) shardIndex(sh *shard) int {
	for i, o := range s.shards {
		if o == sh {
			return i
		}
	}
	return -1
}

// SetMaxInflight caps the number of concurrently served requests on the
// sheddable routes (everything but /healthz and /readyz); requests past
// the cap get 503 + Retry-After instead of queueing. n <= 0 removes the
// cap. Call before serving traffic.
func (s *Server) SetMaxInflight(n int64) {
	if n < 0 {
		n = 0
	}
	s.maxInflight = n
}

// SetRequestTimeout bounds each sheddable request's context; training
// started by a timed-out request aborts (unless other waiters remain).
// d <= 0 disables the deadline. Call before serving traffic.
func (s *Server) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.requestTimeout = d
}

// BeginShutdown transitions the server into draining: /readyz flips to
// 503 so load balancers stop routing, new requests on sheddable routes
// are refused with 503 + Retry-After, and every in-flight training run is
// cancelled via its context. In-flight requests finish their responses —
// pair this with http.Server.Shutdown, which drains connections.
// Idempotent.
func (s *Server) BeginShutdown() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Printf("serve: draining: refusing new work, cancelling in-flight training")
	}
	s.cancelLifecycle()
	// Seal the event logs after the drain flag flips: new ingest is
	// already refused, and stragglers get ErrClosed → 503, never a lost
	// acknowledgment.
	s.closeEventLogs()
}

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetResponseCacheBytes replaces every shard's response cache with one
// carved from a global budget of maxBytes (equal shares, remainder to
// the first shard). Call before serving traffic (it is not synchronized
// with in-flight requests).
func (s *Server) SetResponseCacheBytes(maxBytes int64) {
	s.cacheBytes = maxBytes
	budgets := respcache.PartitionBudget(maxBytes, len(s.shards))
	for i, sh := range s.shards {
		sh.cache = respcache.New(sh.cacheName, budgets[i], nil)
	}
}

// Handler returns the routed http.Handler. Every route, including
// GET /metrics itself, runs inside the metrics + panic-recovery
// middleware; all but the liveness/readiness probes additionally pass the
// load shedder and the per-request deadline (see middleware in
// resilience.go).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes = s.routes[:0]
	// Probes bypass shedding and deadlines: a loaded or draining server
	// must still answer its orchestrator. Everything else — including
	// the bulk fan-out and shard-admin routes — must go through the full
	// chain; TestSheddableRouteList locks this.
	s.handle(mux, "GET /healthz", "healthz", s.handleHealth, false)
	s.handle(mux, "GET /readyz", "readyz", s.handleReady, false)
	s.handle(mux, "GET /api/network", "network", s.handleNetwork, true)
	s.handle(mux, "GET /api/regions", "regions", s.handleRegions, true)
	s.handle(mux, "GET /api/models", "models", s.handleModels, true)
	s.handle(mux, "POST /api/models/{name}/train", "train", s.handleTrain, true)
	s.handle(mux, "GET /api/models/{name}/ranking", "ranking", s.handleRanking, true)
	s.handle(mux, "GET /api/pipes/{id}", "pipe", s.handlePipe, true)
	s.handle(mux, "GET /api/cohorts", "cohorts", s.handleCohorts, true)
	s.handle(mux, "GET /api/hotspots", "hotspots", s.handleHotspots, true)
	s.handle(mux, "POST /api/plan", "plan", s.handlePlan, true)
	s.handle(mux, "POST /api/bulk/rank", "bulkrank", s.handleBulkRank, true)
	s.handle(mux, "POST /api/bulk/plan", "bulkplan", s.handleBulkPlan, true)
	s.handle(mux, "POST /api/events", "events", s.handleEvents, true)
	s.handle(mux, "GET /metrics", "metrics", s.handleMetrics, true)
	return mux
}

// handle registers one route, recording it in s.routes so the
// sheddable-route invariant is testable. Sheddable routes get the full
// middleware chain; probes get instrumentation and panic recovery only.
func (s *Server) handle(mux *http.ServeMux, pattern, name string, h http.HandlerFunc, sheddable bool) {
	s.routes = append(s.routes, routeSpec{pattern: pattern, name: name, sheddable: sheddable})
	if sheddable {
		mux.HandleFunc(pattern, s.middleware(name, h))
	} else {
		mux.HandleFunc(pattern, s.instrument(name, s.recovered(name, h)))
	}
}

// middleware is the full request chain for sheddable routes, outermost
// first: metrics instrumentation, panic recovery, load shedding /
// drain refusal, per-request deadline, handler.
func (s *Server) middleware(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrument(route, s.recovered(route, s.shed(s.deadlined(h))))
}

// instrument wraps a handler with the per-endpoint metrics: request
// counter, latency histogram, 4xx/5xx error counter and the shared
// in-flight gauge. Handles are resolved once per route at Handler()
// time, so the request path pays only atomic updates.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reg := obs.Default()
	requests := reg.Counter("serve.requests." + route)
	errors := reg.Counter("serve.errors." + route)
	latency := reg.Histogram("serve.request_seconds."+route, nil)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inflight.Inc()
		defer s.metrics.inflight.Dec()
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		latency.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}

// statusWriter captures the response status for the error counter and
// whether any response bytes/headers already went out, so the panic
// recovery middleware knows if a clean 500 is still possible.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the bulk endpoints can
// push each NDJSON line out as it resolves instead of buffering the
// whole stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		w.wrote = true
		f.Flush()
	}
}

// jsonCT is the Content-Type header value, preallocated so hot paths
// assign it into the header map without building a fresh slice.
var jsonCT = []string{"application/json"}

// bufPool recycles the encode buffers behind writeJSON and the cache
// fills. Buffers that grew past bufPoolMax are dropped instead of
// pooled, so one giant response cannot pin memory forever.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const bufPoolMax = 1 << 20

// keyPool recycles response-cache key scratch; keys are rebuilt per
// request from (route, model, canonical params).
var keyPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// appendRankingKey renders the canonical ranking cache key: route,
// model, snapshot ETag, clamped entry count. Shared by the single and
// bulk rank paths so their cache entries always collide — a bulk
// segment replays the exact bytes a single /ranking call cached, and
// vice versa. The snapshot's content ETag is part of the key because a
// live-event retrain can republish the same model name with different
// content: keying on identity makes the stale entry unreachable the
// moment the new snapshot lands, while the bit-identical rebuilds the
// scheduler normally produces keep the same key and stay warm.
func appendRankingKey[T ~string | ~[]byte](key []byte, model T, etag string, entries int) []byte {
	key = append(key, "ranking\x00"...)
	key = append(key, model...)
	key = append(key, 0)
	key = append(key, etag...)
	key = append(key, 0)
	return strconv.AppendInt(key, int64(entries), 10)
}

// appendPlanKey renders the canonical plan cache key over decoded
// values, so textual aliases of one request share an entry; shared by
// the single and bulk plan paths. Like appendRankingKey, the snapshot
// ETag keys the entry to the published content, not just the name.
func appendPlanKey[T ~string | ~[]byte](key []byte, model T, etag string, cm plan.CostModel, b plan.Budget) []byte {
	key = append(key, "plan\x00"...)
	key = append(key, model...)
	key = append(key, 0)
	key = append(key, etag...)
	key = append(key, 0)
	key = respcache.AppendKeyFloat(key, b.MaxLengthM)
	key = append(key, 0)
	key = strconv.AppendInt(key, int64(b.MaxCount), 10)
	key = append(key, 0)
	key = respcache.AppendKeyFloat(key, b.MaxSpend)
	key = append(key, 0)
	key = respcache.AppendKeyFloat(key, cm.InspectionPerKM)
	key = append(key, 0)
	key = respcache.AppendKeyFloat(key, cm.FailureCost)
	return key
}

// writeJSON encodes v into a pooled buffer, then writes it with
// Content-Type and an explicit Content-Length — a single non-chunked
// body write with no per-request buffer growth. Encoding happens before
// any header is flushed, so an unencodable value becomes a clean 500
// instead of a torn 200.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.log.Printf("serve: encode response (status %d): %v", status, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		bufPool.Put(buf)
		return
	}
	h := w.Header()
	h["Content-Type"] = jsonCT
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.log.Printf("serve: write response (status %d): %v", status, err)
	}
	if buf.Cap() <= bufPoolMax {
		bufPool.Put(buf)
	}
}

// encodeBody marshals v into a fresh exactly-sized byte slice (via a
// pooled scratch buffer) for insertion into the response cache.
func encodeBody(v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	if buf.Cap() <= bufPoolMax {
		bufPool.Put(buf)
	}
	return body, nil
}

// writeCached serves one cache entry: 304 Not-Modified when the client
// already holds the entry's ETag, otherwise the full body with ETag and
// Content-Length from the entry's prebuilt header slices. The steady
// state (cache hit, reused connection) allocates nothing.
func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, e respcache.Entry) {
	h := w.Header()
	if e.ETag != "" && r.Header.Get("If-None-Match") == e.ETag {
		e.SetHeaders(h) // 304 still carries the validator
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = jsonCT
	e.SetHeaders(h)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(e.Body); err != nil {
		s.log.Printf("serve: write cached response: %v", err)
	}
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// queryParam extracts the first value of key from a raw query string
// without building the url.Values map (url.Query allocates per call).
// Escaped values go through url.QueryUnescape; a value that fails to
// decode (e.g. a bare "%" in top=1%) is reported as an error so the
// caller can answer 400 — it used to be returned still-encoded, which
// let malformed values masquerade as ordinary bad input downstream.
// The well-known keys this server uses ("top", "min", "by") never need
// escaping themselves.
func queryParam(rawQuery, key string) (string, bool, error) {
	for len(rawQuery) > 0 {
		var pair string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		k, v, _ := strings.Cut(pair, "=")
		if k != key {
			continue
		}
		if strings.ContainsAny(v, "%+") {
			dec, err := url.QueryUnescape(v)
			if err != nil {
				return "", true, fmt.Errorf("undecodable %s parameter %q: %v", key, v, err)
			}
			return dec, true, nil
		}
		return v, true, nil
	}
	return "", false, nil
}

// handleMetrics serves a JSON snapshot of the default obs registry:
// per-endpoint request/latency/error series, the training singleflight
// counters, the response-cache hit/miss/eviction counters, per-model
// fit-duration histograms and the worker-pool task counters (see
// DESIGN.md for the catalog).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, obs.Default().Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	split := sh.pipe.Split()
	resp := map[string]any{
		"region":     sh.net.Region,
		"pipes":      sh.net.NumPipes(),
		"failures":   sh.net.NumFailures(),
		"observed":   []int{sh.net.ObservedFrom, sh.net.ObservedTo},
		"train":      []int{split.TrainFrom, split.TrainTo},
		"test_year":  split.TestYear,
		"network_km": sh.net.TotalLengthM() / 1000,
	}
	// The multi-shard body additionally lists the fleet; a single-shard
	// server keeps the exact pre-shard shape. Live-event counts appear
	// only once ingest has seen traffic, preserving the pre-ingest body.
	if len(s.shards) > 1 {
		resp["regions"] = s.Regions()
	}
	if n := sh.eventSeqNow(); n > 0 {
		resp["live_events"] = n
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type modelStatus struct {
	Name       string  `json:"name"`
	Trained    bool    `json:"trained"`
	AUC        float64 `json:"auc,omitempty"`
	Det1       float64 `json:"detection_at_1pct,omitempty"`
	FitSeconds float64 `json:"fit_seconds,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	models := *sh.models.Load()
	var out []modelStatus
	for _, name := range pipefail.Models() {
		st := modelStatus{Name: name}
		if tm, ok := models[name]; ok {
			st.Trained = true
			st.AUC = tm.ranking.AUC()
			st.Det1 = tm.ranking.DetectionAt(0.01)
			st.FitSeconds = tm.fitSeconds
		}
		out = append(out, st)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func knownModel(name string) bool {
	for _, m := range pipefail.Models() {
		if m == name {
			return true
		}
	}
	return false
}

// errUnknownModel distinguishes a client naming error (400) from
// internal training failures (503) in the handlers' status mapping.
var errUnknownModel = errors.New("unknown model")

// abandon drops one waiter from a training job; the last waiter out
// cancels the run.
func (s *Server) abandon(sh *shard, job *trainJob) {
	sh.mu.Lock()
	job.waiters--
	if job.waiters <= 0 {
		job.cancel()
	}
	sh.mu.Unlock()
}

// runTrain executes one training run on its own goroutine, containing
// panics into recorded failures: a panicking trainer must never take the
// process down, it becomes an error every waiter sees while the server
// keeps serving (the next request for the model retrains from scratch).
func (s *Server) runTrain(ctx context.Context, sh *shard, name string, job *trainJob) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.trainPanics.Inc()
			job.tm = nil
			job.err = fmt.Errorf("training %q panicked: %v", name, r)
			s.log.Printf("serve: training %s panicked (contained): %v", name, r)
		}
		if job.err != nil {
			s.metrics.trainFailures.Inc()
			if errors.Is(job.err, context.Canceled) || errors.Is(job.err, context.DeadlineExceeded) {
				s.metrics.trainCancelled.Inc()
			}
		}
		sh.mu.Lock()
		delete(sh.pending, name)
		if job.err == nil {
			sh.publishLocked(name, job.tm)
		}
		sh.mu.Unlock()
		job.cancel() // release the context's resources
		close(job.done)
	}()
	job.tm, job.err = s.trainFn(ctx, sh, name)
}

// train runs one full training pass for name on one shard and assembles
// the frozen snapshot (see snapshot.go). It does not touch shard maps.
// Cancelling ctx aborts the fit at its next generation/round/epoch
// boundary; a successful pass is persisted to the state dir when one is
// configured.
func (s *Server) train(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
	// Train against the live pipeline: the base one when no events have
	// been ingested (bit-identical to the pre-ingest server), otherwise
	// one extended over the WAL-backed event overlays. The snapshot
	// records the event seq it reflects so the scheduler can tell when
	// newer events have made it stale.
	pipe, seq, err := sh.trainPipeline()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m, err := pipe.TrainContext(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("training %q: %w", name, err)
	}
	snap, err := s.snapshotModel(sh, pipe, seq, name, m, time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	s.log.Printf("serve: trained %s in %.2fs (AUC %.4f)", name, snap.fitSeconds, snap.ranking.AUC())
	s.saveModel(sh, name, m)
	return snap, nil
}

// snapshotModel ranks a fitted model against pipe and freezes the
// serving snapshot at event seq — shared by the training path and the
// warm-restart restore path, so a restored model reproduces the exact
// rankings (and ETags) a fresh train would have produced from the same
// weights over the same event sequence.
func (s *Server) snapshotModel(sh *shard, pipe *pipefail.Pipeline, seq int64, name string, m pipefail.Model, fitSeconds float64) (*modelSnapshot, error) {
	ranking, err := pipe.Rank(m)
	if err != nil {
		return nil, fmt.Errorf("training %q: %w", name, err)
	}
	var calibrator core.Calibrator
	cal := &core.IsotonicCalibrator{}
	if cerr := cal.FitCal(ranking.Scores, ranking.Failed); cerr != nil {
		// Calibration failure is non-fatal: plans are refused while
		// rankings still serve (without fail_prob).
		s.log.Printf("serve: calibration for %s failed: %v", name, cerr)
	} else {
		calibrator = cal
	}
	tm := newModelSnapshot(name, m, ranking, calibrator, fitSeconds)
	tm.eventSeq = seq
	return tm, nil
}

// writeGetErr maps a get() failure onto an HTTP status: naming an unknown
// model is the client's fault (400); everything else — training failure,
// contained panic, cancellation, shutdown — is the service's (503, with
// Retry-After since a retry may well succeed).
func (s *Server) writeGetErr(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnknownModel) {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Retry-After", "1")
	s.writeErr(w, http.StatusServiceUnavailable, "%v", err)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	tm, err := s.getShard(r.Context(), sh, name)
	if err != nil {
		s.writeGetErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, modelStatus{
		Name: name, Trained: true,
		AUC:        tm.ranking.AUC(),
		Det1:       tm.ranking.DetectionAt(0.01),
		FitSeconds: tm.fitSeconds,
	})
}

type rankedPipe struct {
	Rank     int     `json:"rank"`
	PipeID   string  `json:"pipe_id"`
	Score    float64 `json:"score"`
	FailProb float64 `json:"fail_prob,omitempty"`
}

// handleRanking serves the top-N inspection worklist. Steady state is a
// pure replay: one atomic map load for the snapshot, a pooled key build,
// one LRU lookup, and a single body write (or a 304 when the client
// already holds the snapshot's ETag) — zero heap allocations.
func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	tm, err := s.getShard(r.Context(), sh, name)
	if err != nil {
		s.writeGetErr(w, err)
		return
	}
	top := 50
	q, _, qerr := queryParam(r.URL.RawQuery, "top")
	if qerr != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", qerr)
		return
	}
	if q != "" {
		top, err = strconv.Atoi(q)
		if err != nil || top < 1 {
			s.writeErr(w, http.StatusBadRequest, "bad top parameter %q", q)
			return
		}
	}
	entries := tm.topEntries(top)

	// Canonical key: the clamped, re-rendered count, so top=050 and any
	// top beyond the ranking length share one cache entry.
	kp := keyPool.Get().(*[]byte)
	key := appendRankingKey((*kp)[:0], name, tm.etag, len(entries))
	e, err := sh.cache.GetOrFill(key, func() (respcache.Entry, error) {
		body, err := encodeBody(entries)
		if err != nil {
			return respcache.Entry{}, err
		}
		return respcache.Entry{Body: body, ETag: tm.etag}, nil
	})
	*kp = key
	keyPool.Put(kp)
	if err != nil {
		s.log.Printf("serve: encode ranking for %s: %v", name, err)
		s.writeErr(w, http.StatusInternalServerError, "encoding ranking failed")
		return
	}
	s.writeCached(w, r, e)
}

// findPipe locates a pipe ID across the shards: an explicit shard
// first, otherwise every shard in fan-out order (pipe IDs are globally
// unique in district-structured datasets, so the first hit is the hit).
func (s *Server) findPipe(sh *shard, id string) (*shard, *pipefail.Pipe, bool) {
	if sh != nil {
		p, ok := sh.net.PipeByID(id)
		return sh, p, ok
	}
	for _, o := range s.shards {
		if p, ok := o.net.PipeByID(id); ok {
			return o, p, true
		}
	}
	return nil, nil, false
}

func (s *Server) handlePipe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var want *shard
	if region, ok, err := queryParam(r.URL.RawQuery, "region"); err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	} else if ok && region != "" {
		if want, ok = s.byRegion[region]; !ok {
			s.writeErr(w, http.StatusBadRequest, "unknown region %q", region)
			return
		}
	}
	sh, p, ok := s.findPipe(want, id)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown pipe %q", id)
		return
	}
	resp := map[string]any{
		"id":             p.ID,
		"region":         sh.region,
		"class":          p.Class.String(),
		"material":       string(p.Material),
		"coating":        string(p.Coating),
		"diameter":       p.DiameterMM,
		"length_m":       p.LengthM,
		"laid_year":      p.LaidYear,
		"soil":           map[string]string{"corrosivity": p.SoilCorrosivity, "expansivity": p.SoilExpansivity, "geology": p.SoilGeology, "map": p.SoilMap},
		"dist_traffic_m": p.DistToTrafficM,
		"failures":       len(sh.net.FailuresOf(id)),
	}
	scores := map[string]float64{}
	for name, tm := range *sh.models.Load() {
		if i, ok := tm.rankIdx[id]; ok {
			scores[name] = tm.ranking.Scores[i]
		}
	}
	if len(scores) > 0 {
		resp["scores"] = scores
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCohorts replays cohort tables from the response cache — the
// network is immutable for the life of the server, so each dimension is
// computed and encoded exactly once, with a body-hash ETag.
func (s *Server) handleCohorts(w http.ResponseWriter, r *http.Request) {
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	by, _, qerr := queryParam(r.URL.RawQuery, "by")
	if qerr != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", qerr)
		return
	}
	var fill func() (any, error)
	switch by {
	case "", "material":
		fill = func() (any, error) { return sh.net.CohortByMaterial(), nil }
	case "age":
		fill = func() (any, error) { return sh.net.CohortByAgeBand(10) }
	case "diameter":
		fill = func() (any, error) { return sh.net.CohortByDiameterBand([]float64{100, 200, 300, 450}) }
	default:
		s.writeErr(w, http.StatusBadRequest, "unknown cohort dimension %q (want material, age or diameter)", by)
		return
	}
	if by == "" {
		by = "material" // canonical: default and explicit share an entry
	}
	kp := keyPool.Get().(*[]byte)
	key := append((*kp)[:0], "cohorts\x00"...)
	key = append(key, by...)
	e, err := sh.cache.GetOrFill(key, func() (respcache.Entry, error) {
		rows, err := fill()
		if err != nil {
			return respcache.Entry{}, err
		}
		body, err := encodeBody(rows)
		if err != nil {
			return respcache.Entry{}, err
		}
		return respcache.Entry{Body: body, ETag: respcache.BodyETag(body)}, nil
	})
	*kp = key
	keyPool.Put(kp)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeCached(w, r, e)
}

func (s *Server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	sh, err := s.shardFromQuery(r.URL.RawQuery)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	min := 2
	q, _, qerr := queryParam(r.URL.RawQuery, "min")
	if qerr != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", qerr)
		return
	}
	if q != "" {
		var err error
		min, err = strconv.Atoi(q)
		if err != nil || min < 1 {
			s.writeErr(w, http.StatusBadRequest, "bad min parameter %q", q)
			return
		}
	}
	kp := keyPool.Get().(*[]byte)
	key := append((*kp)[:0], "hotspots\x00"...)
	key = strconv.AppendInt(key, int64(min), 10)
	e, err := sh.cache.GetOrFill(key, func() (respcache.Entry, error) {
		body, err := encodeBody(sh.net.SegmentHotspots(min))
		if err != nil {
			return respcache.Entry{}, err
		}
		return respcache.Entry{Body: body, ETag: respcache.BodyETag(body)}, nil
	})
	*kp = key
	keyPool.Put(kp)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeCached(w, r, e)
}

// planRequest uses pointer fields for the priced parameters so "absent"
// (use the default) and "explicitly zero" (a client bug — zero-cost
// inspections, free failures or a zero spend cap price every plan
// nonsensically) are distinguishable. This struct is the encoding/json
// fallback shape; the hot path decodes the same fields into planFields
// via parsePlanFast (see planreq.go).
type planRequest struct {
	Model           string   `json:"model"`
	Region          string   `json:"region"`
	BudgetKM        float64  `json:"budget_km"`
	MaxPipes        int      `json:"max_pipes"`
	InspectionPerKM *float64 `json:"inspection_per_km"`
	FailureCost     *float64 `json:"failure_cost"`
	MaxSpend        *float64 `json:"max_spend"`
}

// decodePlanSlow is the fallback decoder for bodies outside
// parsePlanFast's subset: full encoding/json semantics (and its exact
// error messages), converted into the same planFields shape.
func decodePlanSlow(data []byte, pf *planFields) error {
	var req planRequest
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return err
	}
	pf.model = []byte(req.Model)
	pf.region = []byte(req.Region)
	pf.budgetKM = req.BudgetKM
	pf.maxPipes = req.MaxPipes
	if req.InspectionPerKM != nil {
		pf.inspPerKM, pf.hasInsp = *req.InspectionPerKM, true
	}
	if req.FailureCost != nil {
		pf.failCost, pf.hasFail = *req.FailureCost, true
	}
	if req.MaxSpend != nil {
		pf.maxSpend, pf.hasSpend = *req.MaxSpend, true
	}
	return nil
}

type planResponse struct {
	Model             string   `json:"model"`
	Pipes             []string `json:"pipes"`
	TotalKM           float64  `json:"total_km"`
	InspectionCost    float64  `json:"inspection_cost"`
	ExpectedPrevented float64  `json:"expected_prevented"`
	ExpectedNet       float64  `json:"expected_net"`
}

const (
	defaultInspectionPerKM = 8000
	defaultFailureCost     = 150000
)

// handlePlan prices a budget-constrained inspection plan. Steady state
// is a pure replay, symmetric with handleRanking: the body is read into
// a pooled buffer and decoded by the zero-alloc fast parser, the
// snapshot comes from one atomic map load, the canonical cache key
// (model, rendered budget dimensions, cost parameters) is assembled in
// pooled scratch, and a respcache hit is served with prebuilt headers —
// or a 304 against the body ETag — without touching the heap. A miss
// runs a binary search over the snapshot's precomputed plan prefix
// (plan.BuildPrefix, paid once per cost model) instead of re-sorting
// all candidates, then caches the encoded response.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	s.servePlan(w, r, buf)
	if buf.Cap() <= bufPoolMax {
		bufPool.Put(buf)
	}
}

func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, buf *bytes.Buffer) {
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	data := buf.Bytes()
	var pf planFields
	if !parsePlanFast(data, &pf) {
		pf = planFields{}
		if err := decodePlanSlow(data, &pf); err != nil {
			s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}

	cm, b, perr := planParams(&pf)
	if perr != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", perr)
		return
	}

	sh := s.def
	if len(pf.region) > 0 {
		var ok bool
		if sh, ok = s.byRegion[string(pf.region)]; !ok {
			s.writeErr(w, http.StatusBadRequest, "unknown region %q", pf.region)
			return
		}
	}
	if len(pf.model) == 0 {
		pf.model = s.defaultModel
	}
	tm, ok := (*sh.models.Load())[string(pf.model)]
	if ok {
		s.metrics.sfCached.Inc()
	} else {
		var err error
		tm, err = s.getShard(r.Context(), sh, string(pf.model))
		if err != nil {
			s.writeGetErr(w, err)
			return
		}
	}
	if tm.calibrator == nil {
		s.writeErr(w, http.StatusConflict, "model %q has no calibrator; cannot price a plan", pf.model)
		return
	}

	// Canonical key over decoded values, so textual aliases of one
	// request ({"budget_km":5} vs {"budget_km":5.0}) share an entry.
	kp := keyPool.Get().(*[]byte)
	key := appendPlanKey((*kp)[:0], pf.model, tm.etag, cm, b)

	if e, ok := sh.cache.Get(key); ok {
		*kp = key
		keyPool.Put(kp)
		s.metrics.planCacheHits.Inc()
		s.writeCached(w, r, e)
		return
	}
	s.metrics.planCacheMisses.Inc()

	// Miss: plan off the snapshot's prefix structure. Get/Add instead of
	// GetOrFill so plan-validation failures map to 400 (and encode
	// failures to 500) without ever being cached.
	e, clientErr, err := s.buildPlanBody(tm, string(pf.model), cm, b)
	if err != nil {
		*kp = key
		keyPool.Put(kp)
		if clientErr {
			s.writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.log.Printf("serve: encode plan for %s: %v", pf.model, err)
		s.writeErr(w, http.StatusInternalServerError, "encoding plan failed")
		return
	}
	sh.cache.Add(key, e)
	*kp = key
	keyPool.Put(kp)
	s.writeCached(w, r, e)
}

// planParams validates the decoded plan fields and assembles the cost
// model and budget; every error is a 400 with the exact text servePlan
// has always sent. Shared by the single-plan and bulk-plan paths so the
// two cannot drift.
func planParams(pf *planFields) (plan.CostModel, plan.Budget, error) {
	// Explicit zero on a priced or capped parameter is a client bug, not
	// a request for a degenerate plan.
	if pf.hasInsp && pf.inspPerKM == 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf(
			"inspection_per_km is explicitly 0; omit the field for the default (%d)", defaultInspectionPerKM)
	}
	if pf.hasFail && pf.failCost == 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf(
			"failure_cost is explicitly 0; omit the field for the default (%d)", defaultFailureCost)
	}
	if pf.hasSpend && pf.maxSpend == 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf(
			"max_spend is explicitly 0; omit the field for an uncapped spend")
	}
	// Negative budget dimensions used to silently mean "unconstrained"
	// (the planner treats <= 0 as unset); reject them instead.
	if pf.budgetKM < 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf("negative budget_km %v", pf.budgetKM)
	}
	if pf.maxPipes < 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf("negative max_pipes %d", pf.maxPipes)
	}
	if pf.maxSpend < 0 {
		return plan.CostModel{}, plan.Budget{}, fmt.Errorf("negative max_spend %v", pf.maxSpend)
	}

	cm := defaultCostModel
	if pf.hasInsp {
		cm.InspectionPerKM = pf.inspPerKM
	}
	if pf.hasFail {
		cm.FailureCost = pf.failCost
	}
	if err := cm.Validate(); err != nil {
		return plan.CostModel{}, plan.Budget{}, err
	}
	b := plan.Budget{MaxLengthM: pf.budgetKM * 1000, MaxCount: pf.maxPipes, MaxSpend: pf.maxSpend}
	if b.MaxLengthM <= 0 && b.MaxCount <= 0 && b.MaxSpend <= 0 {
		return plan.CostModel{}, plan.Budget{}, plan.ErrNoBudget
	}
	return cm, b, nil
}

// buildPlanBody prices one plan against a snapshot and encodes the
// response body; shared by the single-plan miss path and the bulk plan
// fill. The bool distinguishes client errors (plan validation → 400)
// from encode failures (500). The caller owns caching.
func (s *Server) buildPlanBody(tm *modelSnapshot, model string, cm plan.CostModel, b plan.Budget) (respcache.Entry, bool, error) {
	px, err := tm.prefixFor(cm, s.metrics.planPrefixBuilds)
	if err != nil {
		return respcache.Entry{}, true, err
	}
	p, err := px.Plan(b)
	if err != nil {
		return respcache.Entry{}, true, err
	}
	resp := planResponse{
		Model:             model,
		TotalKM:           p.TotalLengthM / 1000,
		InspectionCost:    p.InspectionCost,
		ExpectedPrevented: p.ExpectedPrevented,
		ExpectedNet:       p.ExpectedNet,
	}
	if len(p.Selected) > 0 {
		resp.Pipes = p.IDs()
	}
	body, err := encodeBody(resp)
	if err != nil {
		return respcache.Entry{}, false, err
	}
	return respcache.Entry{Body: body, ETag: respcache.BodyETag(body)}, false, nil
}
