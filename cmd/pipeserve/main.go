// Command pipeserve runs the HTTP risk service over a network: rankings,
// per-pipe risk lookups, and budget-constrained inspection plans as JSON.
//
// Usage:
//
//	pipeserve -data data/regionA -addr :8080
//	pipeserve -region B -scale 0.25 -addr :8080     # synthetic network
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/network
//	GET  /api/models
//	POST /api/models/{name}/train
//	GET  /api/models/{name}/ranking?top=N
//	GET  /api/pipes/{id}
//	POST /api/plan  {"model": "...", "budget_km": 10}
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pipeserve: ")

	data := flag.String("data", "", "network directory (pipes.csv/failures.csv/meta.csv)")
	region := flag.String("region", "A", "synthetic region preset when -data is unset")
	seed := flag.Int64("seed", 1, "generator / learner seed")
	scale := flag.Float64("scale", 0.25, "synthetic region scale")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	var net *pipefail.Network
	var err error
	if *data != "" {
		net, err = pipefail.LoadNetwork(*data)
	} else {
		net, err = pipefail.GenerateRegion(*region, *seed, *scale)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving region %s: %d pipes, %d failures", net.Region, net.NumPipes(), net.NumFailures())

	s, err := serve.New(net, log.Default(), pipefail.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
