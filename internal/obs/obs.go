// Package obs is the repository's observability subsystem: named
// registries of atomic counters, gauges and fixed-bucket histograms,
// plus a lightweight span helper that times a region of code into a
// duration histogram.
//
// The package is stdlib-only and built for hot paths: metric handles are
// plain structs updated with single atomic operations, so instrumented
// code fetches a handle once (package init or constructor) and pays one
// atomic add per event — cheap enough to sit inside the parallel
// training loops. Registry lookups (Counter, Gauge, Histogram) take a
// lock and are meant for setup code, not per-event paths.
//
// Snapshot produces a JSON-marshalable, concurrency-safe view of every
// metric, which the serve package exposes at GET /metrics and the CLI
// binaries dump behind their -metrics flags.
//
// Naming convention: metrics are lower-case dot-separated paths,
// subsystem first (`serve.requests.train`); when a metric is broken out
// per label (endpoint, model, region) the label values are the trailing
// segments. DESIGN.md documents the full catalog.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error but is not checked on the
// hot path; Snapshot reports whatever the sum is).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (queue depths,
// in-flight requests, last-seen durations). The zero value is ready.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d atomically (CAS loop; gauges are not meant for per-row
// hot loops, where counters are the right tool).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets defined by sorted
// upper bounds, with an implicit +Inf overflow bucket, and tracks the
// running sum and count. All methods are safe for concurrent use; one
// observation costs two atomic adds plus a CAS for the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a standalone histogram (registries build theirs
// via Registry.Histogram). bounds must be strictly increasing and
// finite; invalid bounds are a programming error and panic.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds must be finite and strictly increasing, got %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records v into the bucket with the smallest upper bound >= v
// (the overflow bucket when v exceeds every bound). NaN observations are
// dropped so a poisoned input can never make the snapshot unmarshalable.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bucket layout for latency/duration
// histograms, in seconds: 100µs to 60s, roughly logarithmic.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry is a named collection of metrics. Lookups get-or-create and
// always return the same handle for a name, so concurrent registration
// is safe and cheap paths can cache handles.
type Registry struct {
	name string

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry("default")

// Default returns the process-wide registry that the instrumented
// packages (core, parallel, serve, experiments) record into and that
// GET /metrics and the -metrics flags snapshot.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds select DurationBuckets). When the name
// already exists the existing histogram wins and bounds are ignored, so
// every caller shares one instance.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Span starts timing a region of code and returns the closer that
// records the elapsed seconds into the named duration histogram:
//
//	defer obs.Span("core.fit_seconds.DirectAUC-ES")()
//
// The histogram lookup happens at span start, so hot callers should
// still cache the histogram and call Observe directly when the span
// name is fixed.
func (r *Registry) Span(name string) func() {
	h := r.Histogram(name, nil)
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// Span times into the default registry; see Registry.Span.
func Span(name string) func() { return defaultRegistry.Span(name) }

// Bucket is one histogram bucket in a snapshot. LE is the upper bound
// rendered as a string ("+Inf" for the overflow bucket) so the snapshot
// always marshals to valid JSON.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram. Buckets
// hold per-bucket (non-cumulative) counts.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time view of a whole registry, shaped for JSON.
type Snapshot struct {
	Registry   string                       `json:"registry"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. It is safe to call concurrently with
// updates; each metric is read atomically (the snapshot as a whole is
// not a single consistent cut, which monitoring does not need). Cost is
// one map copy plus one atomic load per bucket — cheap enough to serve
// on every /metrics request.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Registry:   r.name,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		// A NaN or ±Inf gauge (a degenerate AUC, a 0/0 rate) would make
		// the whole snapshot unencodable — encoding/json rejects
		// non-finite floats — so it is folded to 0 here rather than
		// taking /metrics down with it.
		s.Gauges[name] = finiteOrZero(g.Value())
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     finiteOrZero(h.Sum()),
			Buckets: make([]Bucket, len(h.counts)),
		}
		if hs.Count > 0 {
			hs.Mean = finiteOrZero(hs.Sum / float64(hs.Count))
		}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets[i] = Bucket{LE: le, Count: h.counts[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// finiteOrZero guards JSON encodability: encoding/json refuses NaN and
// ±Inf, and one poisoned series must not break the metrics endpoint.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}

// SanitizeMetricName folds an arbitrary label value (a region name, a
// dataset identifier) into the metric naming convention: lower-case
// [a-z0-9_] runs, with every other character collapsed to a single
// underscore and edge underscores trimmed. An empty or fully-invalid
// input becomes "_" so callers always get a usable segment. Distinct
// inputs can collide ("A/B" and "a.b" both sanitize to "a_b"); callers
// that need uniqueness must ensure their raw labels differ in
// alphanumerics, which region names in practice do.
func SanitizeMetricName(label string) string {
	var b []byte
	pendingSep := false
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		default:
			if len(b) > 0 {
				pendingSep = true
			}
			continue
		}
		if pendingSep {
			b = append(b, '_')
			pendingSep = false
		}
		b = append(b, c)
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}
