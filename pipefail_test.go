package pipefail

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/colfmt"
	"repro/internal/core"
	"repro/internal/dataset"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	net, err := GenerateRegion("A", 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGenerateRegionDeterminism(t *testing.T) {
	a := testNet(t)
	b := testNet(t)
	if a.NumPipes() != b.NumPipes() || a.NumFailures() != b.NumFailures() {
		t.Fatal("GenerateRegion not deterministic")
	}
	if _, err := GenerateRegion("Z", 1, 1); err == nil {
		t.Fatal("unknown region must error")
	}
	if _, err := GenerateRegion("A", 1, 0); err == nil {
		t.Fatal("bad scale must error")
	}
}

func TestSaveLoadNetwork(t *testing.T) {
	net := testNet(t)
	dir := filepath.Join(t.TempDir(), "net")
	if err := SaveNetwork(net, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNetwork(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPipes() != net.NumPipes() || got.NumFailures() != net.NumFailures() {
		t.Fatal("round trip changed the network")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	net := testNet(t)
	p, err := NewPipeline(net, WithSeed(3), WithESGenerations(15))
	if err != nil {
		t.Fatal(err)
	}
	if p.Split().TestYear != net.ObservedTo {
		t.Fatal("paper split must hold out the final year")
	}
	if len(p.FeatureNames()) == 0 {
		t.Fatal("no feature names")
	}
	ranking, err := p.TrainAndRank("DirectAUC-ES")
	if err != nil {
		t.Fatal(err)
	}
	if ranking.Len() == 0 || ranking.Len() > net.NumPipes() {
		t.Fatalf("ranking size %d", ranking.Len())
	}
	if auc := ranking.AUC(); auc < 0.55 {
		t.Fatalf("pipeline AUC = %v", auc)
	}
	if d1, d10 := ranking.DetectionAt(0.01), ranking.DetectionAt(0.10); d10 < d1 {
		t.Fatalf("detection must be monotone: %v vs %v", d1, d10)
	}
	if dl := ranking.DetectionAtLength(0.10); dl < 0 || dl > 1 {
		t.Fatalf("length detection %v", dl)
	}
	top := ranking.TopIDs(5)
	if len(top) != 5 {
		t.Fatalf("top ids %v", top)
	}
	seen := map[string]bool{}
	for _, id := range top {
		if seen[id] {
			t.Fatal("duplicate pipe in top list")
		}
		seen[id] = true
		if _, ok := net.PipeByID(id); !ok {
			t.Fatalf("unknown pipe %s in ranking", id)
		}
	}
	curve := ranking.Curve(20)
	if len(curve) == 0 || curve[len(curve)-1].Y != 1 {
		t.Fatal("curve must reach full detection")
	}
}

func TestPipelineEveryModelRuns(t *testing.T) {
	net := testNet(t)
	p, err := NewPipeline(net, WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Models() {
		ranking, err := p.TrainAndRank(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ranking.Model != name {
			t.Fatalf("ranking model %q", ranking.Model)
		}
		if a := ranking.AUC(); a < 0.3 || a > 1 {
			t.Fatalf("%s AUC %v out of plausible band", name, a)
		}
	}
}

func TestPipelineWithCustomSplit(t *testing.T) {
	net := testNet(t)
	split, err := dataset.NewSplit(net, 1998, 2004, 2005)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(net, WithSplit(split))
	if err != nil {
		t.Fatal(err)
	}
	if p.Split().TestYear != 2005 || p.Split().TrainTo != 2004 {
		t.Fatalf("split not honoured: %+v", p.Split())
	}
	ranking, err := p.TrainAndRank("Logistic")
	if err != nil {
		t.Fatal(err)
	}
	if ranking.TestYear != 2005 {
		t.Fatalf("ranking year %d", ranking.TestYear)
	}
}

func TestPersistedModelScoresThroughPipeline(t *testing.T) {
	net := testNet(t)
	p, err := NewPipeline(net, WithSeed(4), WithESGenerations(10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Train("RankSVM")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.SaveLinear(&buf, m, p.FeatureNames()); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := core.LoadLinear(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.FeatureNames) != len(p.FeatureNames()) {
		t.Fatal("feature schema lost in persistence")
	}
	r1, err := p.Rank(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Rank(loaded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatal("loaded model ranks differently")
		}
	}
}

func TestSelectModel(t *testing.T) {
	net := testNet(t)
	p, err := NewPipeline(net, WithSeed(5), WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	best, aucs, err := p.SelectModel([]string{"Logistic", "Random", "Heuristic-Age"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(aucs) != 3 {
		t.Fatalf("aucs %v", aucs)
	}
	if best == "Random" {
		t.Fatalf("random selected as best: %v", aucs)
	}
	if aucs[best] < aucs["Random"] {
		t.Fatalf("winner %s has lower AUC than Random: %v", best, aucs)
	}
	// The winner can be trained directly.
	if _, err := p.TrainAndRank(best); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.SelectModel([]string{"bogus"}, 3); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestPipelineOptions(t *testing.T) {
	net := testNet(t)
	custom, err := NewPipeline(net, WithFeatureGroups(FeatureGroups{Age: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.FeatureNames()) != 2 {
		t.Fatalf("age-only features: %v", custom.FeatureNames())
	}
	if _, err := NewPipeline(nil); err == nil {
		t.Fatal("nil network must error")
	}
	if _, err := custom.Train("bogus"); err == nil {
		t.Fatal("unknown model must error")
	}
}

// TestPipelineDataColumnarMatchesNetwork pins the cross-format contract at
// the facade level: a pipeline fed by a sniffed columnar dataset must rank
// exactly like one fed the in-memory network the dataset came from.
func TestPipelineDataColumnarMatchesNetwork(t *testing.T) {
	net := testNet(t)
	dir := filepath.Join(t.TempDir(), "net")
	if err := SaveNetwork(net, dir); err != nil {
		t.Fatal(err)
	}
	// Convert the CSV directory to a columnar one.
	d, err := OpenData(dir)
	if err != nil {
		t.Fatal(err)
	}
	col, err := d.Columnar()
	if err != nil {
		t.Fatal(err)
	}
	colDir := filepath.Join(t.TempDir(), "col")
	if err := SaveNetwork(net, colDir); err != nil { // reuse dir creation
		t.Fatal(err)
	}
	if err := colfmt.WriteFile(filepath.Join(colDir, colfmt.DatasetFile), col); err != nil {
		t.Fatal(err)
	}

	dCol, err := OpenData(colDir)
	if err != nil {
		t.Fatal(err)
	}
	if dCol.Format != colfmt.FormatColumnar {
		t.Fatalf("sniffer chose %q for a dataset.col directory", dCol.Format)
	}

	pNet, err := NewPipeline(net, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pCol, err := NewPipelineData(dCol, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if pNet.Split() != pCol.Split() {
		t.Fatalf("default splits differ: %+v vs %+v", pNet.Split(), pCol.Split())
	}
	rNet, err := pNet.TrainAndRank("RankSVM")
	if err != nil {
		t.Fatal(err)
	}
	rCol, err := pCol.TrainAndRank("RankSVM")
	if err != nil {
		t.Fatal(err)
	}
	if rNet.AUC() != rCol.AUC() {
		t.Fatalf("AUC differs across formats: %v vs %v", rNet.AUC(), rCol.AUC())
	}
	if !reflect.DeepEqual(rNet.PipeIDs, rCol.PipeIDs) {
		t.Fatal("ranking order differs across formats")
	}
	if !reflect.DeepEqual(rNet.Scores, rCol.Scores) {
		t.Fatal("scores differ across formats")
	}
}
