package serve

// Chaos suite: the serve stack under simultaneous network faults
// (internal/faulty listener cuts + delays) and training faults
// (failures, panics and hangs injected through the trainFn seam), with
// shedding, request deadlines and a mid-storm drain. Run under -race by
// `make chaos` (folded into `make verify`). Client-side errors are
// expected — the invariants are strictly server-side: no crash, no
// deadlock, no torn snapshot state, probes keep answering, and a clean
// drain at the end.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/faulty"
)

// chaosTrainer wraps the real trainer, injecting a deterministic fault
// by call index: every 4th call fails, every 5th panics, every 7th
// hangs until cancelled. (Indices sharing multiples fault by the first
// matching rule.)
type chaosTrainer struct {
	real  func(ctx context.Context, name string) (*modelSnapshot, error)
	calls atomic.Int64
}

func (c *chaosTrainer) train(ctx context.Context, name string) (*modelSnapshot, error) {
	i := c.calls.Add(1)
	switch {
	case i%7 == 0:
		<-ctx.Done() // hang: only cancellation frees this trainer
		return nil, fmt.Errorf("chaos hang: %w", ctx.Err())
	case i%5 == 0:
		panic(fmt.Sprintf("chaos panic on call %d", i))
	case i%4 == 0:
		return nil, errors.New("chaos failure")
	}
	return c.real(ctx, name)
}

func TestChaosServerSurvives(t *testing.T) {
	net0, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net0, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		t.Fatal(err)
	}
	ct := &chaosTrainer{real: s.train}
	s.trainFn = ct.train
	s.SetMaxInflight(6)
	s.SetRequestTimeout(300 * time.Millisecond)

	ts := httptest.NewUnstartedServer(s.Handler())
	fl := faulty.Wrap(ts.Listener, func(i int) faulty.Fault {
		switch {
		case i%5 == 3:
			return faulty.Fault{CutAfter: 256} // torn response mid-body
		case i%5 == 4:
			return faulty.Fault{Delay: 3 * time.Millisecond} // slow client
		}
		return faulty.Fault{}
	})
	ts.Listener = fl
	ts.Start()
	defer ts.Close()

	// Cheap models only: the request deadline must never fire on an
	// honest training run, only on injected hangs.
	models := []string{"Heuristic-Age", "Heuristic-Length", "Logistic", "Cox"}
	paths := []string{"/api/network", "/api/cohorts", "/api/hotspots?min=1", "/metrics"}

	// Per-request client without keep-alive so connection faults land on
	// fresh connections instead of poisoning a shared pool.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   10 * time.Second,
	}

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var clientErrs, non2xx atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0:
					resp, err = client.Post(ts.URL+"/api/models/"+models[(w+i)%len(models)]+"/train", "application/json", nil)
				case 1:
					resp, err = client.Get(ts.URL + "/api/models/" + models[(w+i)%len(models)] + "/ranking?top=10")
				case 2:
					resp, err = client.Post(ts.URL+"/api/plan", "application/json",
						strings.NewReader(`{"model":"`+models[(w+i)%len(models)]+`","budget_km":3,"max_pipes":20}`))
				default:
					resp, err = client.Get(ts.URL + paths[(w+i)%len(paths)])
				}
				if err != nil {
					clientErrs.Add(1) // cut/reset connections are expected
					continue
				}
				if _, cerr := io.Copy(io.Discard, resp.Body); cerr != nil {
					clientErrs.Add(1) // torn body after a mid-response cut
				}
				resp.Body.Close()
				if resp.StatusCode >= 300 {
					non2xx.Add(1) // sheds, chaos failures: also expected
				}
			}
		}(w)
	}
	wg.Wait()

	st := fl.Stats()
	if st.Faulted == 0 {
		t.Fatal("chaos run injected no connection faults; the plan is dead")
	}
	if ct.calls.Load() == 0 {
		t.Fatal("chaos run never reached the trainer")
	}
	t.Logf("chaos: %d conns (%d faulted, %d cut), %d trainer calls, %d client errors, %d non-2xx",
		st.Accepted, st.Faulted, st.Cut, ct.calls.Load(), clientErrs.Load(), non2xx.Load())

	// Invariant: the server survived — probes answer, panics were
	// contained, and a real model is still servable end to end.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz dead after the storm")
	}
	s.trainFn = s.train // calm the trainer
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("cannot train cleanly after the storm")
	}

	// Every published snapshot is fully formed (a torn publish would
	// leave nil fields that panic the read path).
	for name, tm := range *s.models.Load() {
		if tm == nil || tm.ranking == nil || tm.model == nil {
			t.Fatalf("torn snapshot published for %s", name)
		}
	}

	// And the server still drains cleanly: readyz flips, hung training
	// (if any is left) dies with the lifecycle context.
	s.BeginShutdown()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatal("readyz not draining after BeginShutdown")
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending) == 0
	})
}

// TestChaosSingleflightUnderCancellation hammers one model with waves
// of short-deadline requests against a hanging trainer, then asserts
// the pending map converges to empty and a clean train still works —
// the refcounted abandon path never leaks a job or a goroutine.
func TestChaosSingleflightUnderCancellation(t *testing.T) {
	s, _ := newTestServer(t)
	var hangs atomic.Int64
	s.trainFn = func(ctx context.Context, name string) (*modelSnapshot, error) {
		hangs.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}

	const waves, waiters = 5, 6
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				defer cancel()
				if _, err := s.get(ctx, "Heuristic-Age"); err == nil {
					t.Error("hung training returned a snapshot")
				}
			}()
		}
		wg.Wait()
	}

	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending) == 0
	})
	if hangs.Load() == 0 {
		t.Fatal("hanging trainer never ran")
	}

	s.trainFn = s.train
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatalf("clean train after cancellation storm: %v", err)
	}
}
