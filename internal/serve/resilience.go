package serve

import (
	"context"
	"net/http"
)

// This file is the resilience middleware for the serve layer: panic
// recovery, load shedding / drain refusal, per-request deadlines, and
// the readiness probe. Ordering (see Server.middleware) puts recovery
// outermost so a panic anywhere below — shedder, handler, encoder —
// still produces a well-formed 500 and a metrics increment instead of a
// dead connection and a crashed process.

// retryAfter1s is the Retry-After header value for shed responses: the
// cap and drain states both clear on the order of a second, so clients
// get a concrete (and deliberately short) backoff hint.
var retryAfter1s = []string{"1"}

// recovered converts a handler panic into a 500 (when no bytes have
// been written yet) plus a serve.panics.recovered increment and a log
// line naming the route. The connection stays usable and the process
// stays up; only the one request is lost.
func (s *Server) recovered(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			s.metrics.handlerPanics.Inc()
			s.log.Printf("serve: panic in %s handler (recovered): %v", route, rec)
			if sw, ok := w.(*statusWriter); ok && !sw.wrote {
				s.writeErr(sw, http.StatusInternalServerError, "internal error")
			}
		}()
		h(w, r)
	}
}

// shed refuses work the server should not take on: everything once
// draining has begun, and requests beyond the in-flight cap when one is
// set. Both cases answer 503 with Retry-After — the orchestrator's load
// balancer reads /readyz, but clients talking to the pod directly still
// get an actionable signal instead of queueing behind a saturated or
// dying server.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.shedDraining.Inc()
			w.Header()["Retry-After"] = retryAfter1s
			s.writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		if cap := s.maxInflight; cap > 0 {
			if s.inflightReqs.Add(1) > cap {
				s.inflightReqs.Add(-1)
				s.metrics.shedCapacity.Inc()
				w.Header()["Retry-After"] = retryAfter1s
				s.writeErr(w, http.StatusServiceUnavailable,
					"over capacity (%d requests in flight)", cap)
				return
			}
			defer s.inflightReqs.Add(-1)
		}
		h(w, r)
	}
}

// deadlined bounds the request's context with the configured timeout.
// With no timeout configured it is a passthrough — no context allocation
// on the hot path, which keeps the cached-ranking zero-alloc guarantee.
func (s *Server) deadlined(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.requestTimeout <= 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// handleReady is the readiness probe: 200 while the server accepts
// work, 503 once draining. Unlike /healthz (pure liveness), this is the
// signal load balancers use to route — it must flip before connections
// drain so no new work lands on a terminating pod. The body reports how
// many models are trained so operators can tell a cold pod from a warm
// one.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	trained := 0
	for _, sh := range s.shards {
		trained += len(*sh.models.Load())
	}
	if s.draining.Load() {
		w.Header()["Retry-After"] = retryAfter1s
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "models_trained": trained,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "models_trained": trained,
	})
}
