// Package faulty is a deterministic fault-injection harness for
// network-facing tests. It wraps a net.Listener so that each accepted
// connection receives a Fault chosen by an index-driven Plan: added
// latency before the first read, or an abrupt connection cut after a
// byte budget of response data (a mid-response reset/truncation as the
// client sees it).
//
// The harness is deliberately clock- and randomness-free at the
// decision level: faults are assigned by accepted-connection index, so
// a chaos test's fault pattern is reproducible run to run even though
// goroutine interleaving is not. The serve chaos suite (run under
// -race by `make chaos`) layers this under httptest servers together
// with the training seam's failure/panic/hang injection.
package faulty

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens to one connection. The zero Fault is a
// passthrough.
type Fault struct {
	// Delay is slept once, before the connection's first Read — a slow
	// client (or a slow network) from the server's point of view.
	Delay time.Duration
	// CutAfter, when positive, abruptly closes the connection after
	// that many bytes have been written to it. The write that crosses
	// the budget is truncated at the boundary, so clients observe a
	// torn response followed by a reset — not a clean EOF at a message
	// boundary.
	CutAfter int
}

func (f Fault) isZero() bool { return f.Delay == 0 && f.CutAfter == 0 }

// Plan assigns a Fault to the i-th accepted connection (0-based).
type Plan func(i int) Fault

// None is the passthrough plan.
func None(int) Fault { return Fault{} }

// EveryNth builds a plan injecting fault f into every n-th connection
// (the n-1st, 2n-1st, ... accepted), all others untouched. n <= 0
// never injects.
func EveryNth(n int, f Fault) Plan {
	return func(i int) Fault {
		if n > 0 && (i+1)%n == 0 {
			return f
		}
		return Fault{}
	}
}

// Stats counts what the harness has done, for test assertions.
type Stats struct {
	Accepted int64 // connections accepted
	Faulted  int64 // connections that got a non-zero fault
	Cut      int64 // connections abruptly closed by a byte budget
}

// Listener wraps an inner listener with a fault plan.
type Listener struct {
	net.Listener
	plan  Plan
	n     atomic.Int64
	fault atomic.Int64
	cut   atomic.Int64
}

// Wrap returns a Listener applying plan to every accepted connection.
// A nil plan means None.
func Wrap(inner net.Listener, plan Plan) *Listener {
	if plan == nil {
		plan = None
	}
	return &Listener{Listener: inner, plan: plan}
}

// Accept accepts from the inner listener and applies the plan.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	i := l.n.Add(1) - 1
	f := l.plan(int(i))
	if f.isZero() {
		return c, nil
	}
	l.fault.Add(1)
	return &conn{Conn: c, fault: f, onCut: func() { l.cut.Add(1) }}, nil
}

// Stats returns a snapshot of the harness counters.
func (l *Listener) Stats() Stats {
	return Stats{Accepted: l.n.Load(), Faulted: l.fault.Load(), Cut: l.cut.Load()}
}

// conn applies one Fault to a net.Conn.
type conn struct {
	net.Conn
	fault     Fault
	onCut     func()
	delayOnce sync.Once
	written   atomic.Int64
	cutDone   atomic.Bool
}

func (c *conn) Read(p []byte) (int, error) {
	if c.fault.Delay > 0 {
		c.delayOnce.Do(func() { time.Sleep(c.fault.Delay) })
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.fault.CutAfter <= 0 {
		return c.Conn.Write(p)
	}
	total := c.written.Add(int64(len(p)))
	if total <= int64(c.fault.CutAfter) {
		return c.Conn.Write(p)
	}
	// This write crosses the byte budget: flush the allowed prefix so
	// the client sees a torn body, then kill the connection hard.
	allowed := int64(c.fault.CutAfter) - (total - int64(len(p)))
	if allowed < 0 {
		allowed = 0
	}
	n := 0
	if allowed > 0 {
		n, _ = c.Conn.Write(p[:allowed])
	}
	c.cut()
	return n, net.ErrClosed
}

// cut closes the connection abruptly; for TCP, SO_LINGER 0 turns the
// close into an RST so the peer sees a reset rather than a tidy FIN.
func (c *conn) cut() {
	if !c.cutDone.CompareAndSwap(false, true) {
		return
	}
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
	if c.onCut != nil {
		c.onCut()
	}
}
