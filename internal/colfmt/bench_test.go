package colfmt

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/synthetic"
)

// benchSizes are the data-plane measurement points: the 10k/100k slices of
// the nation preset run everywhere; the full 1M-pipe fixture takes a
// minute of synthesis on a small machine, so it only runs when BENCH_FULL
// is set (make bench-data sets it).
var benchSizes = []struct {
	name  string
	scale float64
	full  bool
}{
	{"rows=10k", 0.01, false},
	{"rows=100k", 0.1, false},
	{"rows=1M", 1.0, true},
}

// benchFixtures caches one generated dataset per scale across the whole
// benchmark binary — nation-scale synthesis dominates everything else, so
// it must run once, not once per benchmark.
var benchFixtures = map[float64]*benchFixture{}

type benchFixture struct {
	d   *Dataset
	raw []byte
	// csvPipes and csvFails are the CSV renderings, for the convert path.
	csvPipes, csvFails []byte
}

func fixture(b *testing.B, scale float64) *benchFixture {
	b.Helper()
	if f, ok := benchFixtures[scale]; ok {
		return f
	}
	cfg, err := synthetic.Nation(3).Scaled(scale)
	if err != nil {
		b.Fatal(err)
	}
	net, _, err := synthetic.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	d, err := FromNetwork(net)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		b.Fatal(err)
	}
	var pbuf, fbuf bytes.Buffer
	if err := dataset.WritePipes(&pbuf, net.Pipes()); err != nil {
		b.Fatal(err)
	}
	if err := dataset.WriteFailures(&fbuf, net.Failures()); err != nil {
		b.Fatal(err)
	}
	f := &benchFixture{d: d, raw: buf.Bytes(), csvPipes: pbuf.Bytes(), csvFails: fbuf.Bytes()}
	benchFixtures[scale] = f
	return f
}

func benchEach(b *testing.B, fn func(b *testing.B, f *benchFixture)) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			if size.full && os.Getenv("BENCH_FULL") == "" {
				b.Skip("1M-pipe fixture: set BENCH_FULL=1 (make bench-data does)")
			}
			f := fixture(b, size.scale)
			// Fixture synthesis happens lazily on first use; keep it out
			// of the measurement.
			b.ResetTimer()
			fn(b, f)
		})
	}
}

// BenchmarkColRead measures the one-pass streaming decode into column
// arrays — the load path whose allocation count must not scale with rows.
func BenchmarkColRead(b *testing.B) {
	benchEach(b, func(b *testing.B, f *benchFixture) {
		b.SetBytes(int64(len(f.raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Read(bytes.NewReader(f.raw), int64(len(f.raw))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColWrite measures columnar encoding to a discarded stream.
func BenchmarkColWrite(b *testing.B) {
	benchEach(b, func(b *testing.B, f *benchFixture) {
		b.SetBytes(int64(len(f.raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := Write(io.Discard, f.d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConvertCSVToCol measures the full conversion pipeline: parse
// the CSV tables, assemble the network, columnarize, encode.
func BenchmarkConvertCSVToCol(b *testing.B) {
	benchEach(b, func(b *testing.B, f *benchFixture) {
		b.SetBytes(int64(len(f.csvPipes) + len(f.csvFails)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipes, err := dataset.ReadPipes(bytes.NewReader(f.csvPipes))
			if err != nil {
				b.Fatal(err)
			}
			fails, err := dataset.ReadFailures(bytes.NewReader(f.csvFails))
			if err != nil {
				b.Fatal(err)
			}
			net := dataset.NewNetwork(f.d.Region, f.d.ObservedFrom, f.d.ObservedTo, pipes, fails)
			d, err := FromNetwork(net)
			if err != nil {
				b.Fatal(err)
			}
			if err := Write(io.Discard, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngest measures feature-matrix encoding straight from the
// columns: builder construction plus train/test set fills.
func BenchmarkIngest(b *testing.B) {
	benchEach(b, func(b *testing.B, f *benchFixture) {
		split := dataset.Split{
			TrainFrom: f.d.ObservedFrom,
			TrainTo:   f.d.ObservedTo - 1,
			TestYear:  f.d.ObservedTo,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld, err := feature.NewBuilderFromSource(f.d, feature.Options{Groups: feature.AllGroups(), Standardize: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bld.TrainSet(split); err != nil {
				b.Fatal(err)
			}
			if _, err := bld.TestSet(split); err != nil {
				b.Fatal(err)
			}
		}
	})
}
