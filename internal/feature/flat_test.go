package feature

import (
	"testing"

	"repro/internal/dataset"
)

// flatTestNet builds a small deterministic network for layout tests.
func flatTestNet(t *testing.T) (*dataset.Network, dataset.Split) {
	t.Helper()
	net := buildNet()
	return net, mustSplit(t, net)
}

func TestBuilderSetsAreDense(t *testing.T) {
	net, split := flatTestNet(t)
	b, err := NewBuilder(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	te, err := b.TestSet(split)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Set{tr, te} {
		flat, stride := s.Flat()
		if flat == nil {
			t.Fatal("builder set must have a flat backing")
		}
		if stride != s.Dim() {
			t.Fatalf("stride %d != dim %d", stride, s.Dim())
		}
		if len(flat) != s.Len()*stride {
			t.Fatalf("flat length %d != %d rows x %d", len(flat), s.Len(), stride)
		}
		// X rows must be views into the backing: same values, shared storage.
		for i, row := range s.X {
			if len(row) != stride {
				t.Fatalf("row %d length %d != stride %d", i, len(row), stride)
			}
			for j, v := range row {
				if flat[i*stride+j] != v {
					t.Fatalf("row %d col %d: view %v != flat %v", i, j, v, flat[i*stride+j])
				}
			}
		}
		old := s.X[0][0]
		s.X[0][0] = old + 1
		if flat[0] != old+1 {
			t.Fatal("mutating a row view must write through to the flat backing")
		}
		s.X[0][0] = old
	}
}

func TestNewDenseRowCapacityClamped(t *testing.T) {
	s := NewDense([]string{"a", "b"}, 3, 2)
	// Appending to a full-capacity row view must reallocate, never bleed
	// into the next row's storage.
	row := append(s.X[0], 99)
	_ = row
	if s.flat[2] != 0 {
		t.Fatalf("append to row 0 overwrote row 1's backing: %v", s.flat)
	}
}

func TestNewDensePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dim":      func() { NewDense(nil, 3, 0) },
		"negative rows": func() { NewDense(nil, -1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlatNilForViewSets(t *testing.T) {
	s := &Set{Names: []string{"a"}, X: [][]float64{{1}, {2}}}
	if flat, stride := s.Flat(); flat != nil || stride != 0 {
		t.Fatalf("hand-assembled set reported a flat backing: %v, %d", flat, stride)
	}
}

func TestMatrixMemcpyMatchesRowCopy(t *testing.T) {
	net, split := flatTestNet(t)
	b, err := NewBuilder(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	// View-set twin of the same rows: forces the row-by-row path.
	view := &Set{Names: tr.Names, X: tr.X, Label: tr.Label}
	md := tr.Matrix()
	mv := view.Matrix()
	if md.Rows != mv.Rows || md.Cols != mv.Cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", md.Rows, md.Cols, mv.Rows, mv.Cols)
	}
	for i := range md.Data {
		if md.Data[i] != mv.Data[i] {
			t.Fatalf("element %d: memcpy path %v != row path %v", i, md.Data[i], mv.Data[i])
		}
	}
	// The matrix must be a copy, not an alias of the backing.
	md.Data[0] = md.Data[0] + 5
	if flat, _ := tr.Flat(); flat[0] == md.Data[0] {
		t.Fatal("Matrix must copy, not alias, the flat backing")
	}
}
