// Package wal is a durable write-ahead event log: the crash-safety
// substrate of the streaming-ingest path. Callers append opaque payloads
// and receive a log offset; WaitDurable blocks until that offset is
// fsynced (policy permitting), so an HTTP acknowledgment is only ever
// sent for bytes that survive power loss.
//
// On-disk layout: rotating segment files wal-NNNNNNNN.seg, each
//
//	"PWAL" | u16 version=1 | u16 reserved
//	frame* — u32 payload-length | u32 CRC-32 (IEEE) of payload | payload
//
// (all integers little-endian, mirroring the colfmt section discipline:
// every byte of payload is covered by a checksum, and every declared
// length is sanity-checked before it is trusted).
//
// Durability model:
//
//   - SyncAlways: WaitDurable fsyncs before returning. Concurrent
//     waiters group-commit — the first one in flushes and fsyncs
//     everything appended so far, and every waiter at or below the new
//     watermark returns without issuing its own fsync.
//   - SyncInterval: a background ticker fsyncs every Interval;
//     WaitDurable returns immediately (acks may be lost on crash, bounded
//     by the interval).
//   - SyncNever: the OS decides; WaitDurable returns immediately.
//
// Recovery (Open) replays every intact record in log order, truncates a
// torn tail at the first bad frame of the final segment, and quarantines
// a corrupt interior segment (renaming it *.corrupt) after delivering its
// intact prefix — a record is never dropped because a *later* byte rotted.
// Idempotence under replay is the caller's job (event-ID dedup): a crash
// between fsync and acknowledgment means the record is on disk but the
// client will retry it.
//
// The package carries a deterministic crash-point harness (see
// crash.go): labeled points in append/rotate/sync either abort the
// process (env-triggered, for cross-process SIGKILL tests) or
// simulate process death in-process with a controllable amount of the
// user-space buffer flushed, so chaos tests can manufacture torn tails
// on demand.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

const (
	// Magic is the 4-byte segment-file signature.
	Magic = "PWAL"
	// Version is the current segment format version.
	Version = 1

	headerSize      = 8
	frameHeaderSize = 8

	// MaxRecordBytes bounds a single payload; a frame declaring more is
	// corrupt by definition, so a flipped length byte cannot balloon a
	// replay allocation.
	MaxRecordBytes = 4 << 20

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 8 << 20

	// DefaultInterval is the fsync period for SyncInterval when Options
	// leaves Interval zero.
	DefaultInterval = 100 * time.Millisecond

	segPrefix        = "wal-"
	segSuffix        = ".seg"
	quarantineSuffix = ".corrupt"

	// flushThreshold bounds the user-space buffer; a larger buffer only
	// widens the window of unflushed (crash-lost, unacked) bytes.
	flushThreshold = 256 << 10
)

// SyncPolicy selects when appended bytes are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before WaitDurable returns (group-committed).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker.
	SyncInterval
	// SyncNever never fsyncs explicitly (except at rotation/close).
	SyncNever
)

// ParseSyncPolicy converts the -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// String renders the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures Open.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the durability policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval fsync period (default DefaultInterval).
	Interval time.Duration
	// MetricsName prefixes this log's obs series (default "wal").
	MetricsName string
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrCrashed is returned after a simulated crash point fired; the log
// refuses all further work, exactly as a dead process would.
var ErrCrashed = errors.New("wal: crashed (simulated)")

type metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	fsyncSec    *obs.Histogram
	replayed    *obs.Counter
	truncated   *obs.Counter
	quarantined *obs.Counter
	segments    *obs.Gauge
	sizeBytes   *obs.Gauge
	backlog     *obs.Gauge
}

func newMetrics(prefix string) metrics {
	reg := obs.Default()
	return metrics{
		appends:     reg.Counter(prefix + ".appends"),
		appendBytes: reg.Counter(prefix + ".append_bytes"),
		fsyncs:      reg.Counter(prefix + ".fsyncs"),
		fsyncSec:    reg.Histogram(prefix+".fsync_seconds", []float64{.0001, .0005, .001, .005, .01, .05, .1, .5}),
		replayed:    reg.Counter(prefix + ".replayed"),
		truncated:   reg.Counter(prefix + ".truncated_tails"),
		quarantined: reg.Counter(prefix + ".quarantined_segments"),
		segments:    reg.Gauge(prefix + ".segments"),
		sizeBytes:   reg.Gauge(prefix + ".size_bytes"),
		backlog:     reg.Gauge(prefix + ".backlog_bytes"),
	}
}

// WAL is one durable log. All methods are safe for concurrent use.
type WAL struct {
	dir  string
	opts Options
	m    metrics

	// crashHook, when set (before traffic; see SetCrashHook), simulates
	// process death at labeled points.
	crashHook func(label string) Action

	mu       sync.Mutex // guards the fields below
	f        *os.File   // active segment
	buf      []byte     // user-space buffer: lost on crash, like any process buffer
	seq      int        // active segment index
	segSize  int64      // active segment size including buffered bytes
	written  int64      // total log bytes ever appended (headers + frames)
	segCount int        // live (non-quarantined) segment files
	closed   bool

	// syncMu serializes fsyncs; synced is the durable watermark in
	// written-space. A WaitDurable caller first checks the watermark, so
	// one fsync acknowledges every writer it covered (group commit).
	syncMu sync.Mutex
	synced atomic.Int64

	dead atomic.Bool

	tickStop chan struct{}
	tickDone chan struct{}
}

// Open creates dir if needed, replays every intact record (in log
// order) through replay, repairs corruption (torn-tail truncation,
// interior-segment quarantine), and returns the log opened for appends.
// A replay callback error aborts Open.
func Open(dir string, opts Options, replay func(payload []byte) error) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.MetricsName == "" {
		opts.MetricsName = "wal"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, m: newMetrics(opts.MetricsName)}

	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	for i, seq := range segs {
		if err := w.recoverSegment(seq, i == len(segs)-1, replay); err != nil {
			return nil, err
		}
	}
	if w.f == nil {
		// No segments survived (fresh dir, or a quarantined tail): start
		// a new one after the highest index ever used, so a quarantined
		// file's name is never reused.
		next := 1
		if len(segs) > 0 {
			next = segs[len(segs)-1] + 1
		}
		if err := w.openSegmentLocked(next); err != nil {
			return nil, err
		}
	}
	// Everything on disk at open is as durable as it will ever get.
	w.synced.Store(w.written)
	w.m.segments.Set(float64(w.segCount))
	w.m.sizeBytes.Set(float64(w.written))
	w.m.backlog.Set(0)

	if opts.Sync == SyncInterval {
		w.tickStop = make(chan struct{})
		w.tickDone = make(chan struct{})
		go w.tickLoop()
	}
	return w, nil
}

// listSegments returns the live segment indices in ascending order.
func (w *WAL) listSegments() ([]int, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

func (w *WAL) segPath(seq int) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// recoverSegment replays one segment. Corruption in the tail segment
// truncates the file at the first bad frame and keeps it as the active
// segment; corruption in an interior segment (or an unreadable header
// anywhere) quarantines the file after delivering its intact prefix.
func (w *WAL) recoverSegment(seq int, isTail bool, replay func([]byte) error) error {
	path := w.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}

	headerOK := len(data) >= headerSize &&
		string(data[:4]) == Magic &&
		binary.LittleEndian.Uint16(data[4:6]) == Version
	good := int64(headerSize)
	if !headerOK {
		// A header torn by a crash during segment creation (short file)
		// is recoverable by rewriting it; anything else is foreign bytes.
		if isTail && len(data) < headerSize {
			w.m.truncated.Inc()
			return w.adoptTail(seq, 0)
		}
		return w.quarantineSegment(path, fmt.Errorf("bad segment header"))
	}

	for good < int64(len(data)) {
		if good+frameHeaderSize > int64(len(data)) {
			break // torn frame header
		}
		plen := int64(binary.LittleEndian.Uint32(data[good : good+4]))
		if plen == 0 || plen > MaxRecordBytes || good+frameHeaderSize+plen > int64(len(data)) {
			break // insane length or torn payload
		}
		payload := data[good+frameHeaderSize : good+frameHeaderSize+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[good+4:good+8]) {
			break // bit rot
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return fmt.Errorf("wal: replay segment %d: %w", seq, err)
			}
		}
		w.m.replayed.Inc()
		good += frameHeaderSize + plen
	}

	if good < int64(len(data)) {
		if !isTail {
			return w.quarantineSegment(path, fmt.Errorf("corrupt frame at offset %d", good))
		}
		w.m.truncated.Inc()
	}
	if !isTail {
		w.written += good
		w.segCount++
		return nil
	}
	return w.adoptTail(seq, good)
}

// adoptTail (re)opens the final segment for appending, truncated to its
// last intact frame boundary.
func (w *WAL) adoptTail(seq int, keep int64) error {
	path := w.segPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if keep < headerSize {
		var hdr [headerSize]byte
		copy(hdr[:4], Magic)
		binary.LittleEndian.PutUint16(hdr[4:6], Version)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return fmt.Errorf("wal: rewrite segment header: %w", err)
		}
		keep = headerSize
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.seq = seq
	w.segSize = keep
	w.written += keep
	w.segCount++
	return nil
}

// quarantineSegment sets a corrupt segment aside for the operator and
// makes the rename durable, so the next boot never re-reads rotten bytes.
func (w *WAL) quarantineSegment(path string, cause error) error {
	w.m.quarantined.Inc()
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		return fmt.Errorf("wal: quarantine %s (cause: %v): %w", filepath.Base(path), cause, err)
	}
	return syncDir(w.dir)
}

// openSegmentLocked creates segment seq and makes its directory entry
// durable. Callers hold mu (or have exclusive access during Open).
func (w *WAL) openSegmentLocked(seq int) error {
	f, err := os.OpenFile(w.segPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.seq = seq
	w.segSize = headerSize
	w.written += headerSize
	w.segCount++
	w.m.segments.Set(float64(w.segCount))
	return nil
}

// syncDir fsyncs a directory so renames and creates within it survive
// power loss — fsyncing the file alone pins its bytes, not its name.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

func (w *WAL) usableLocked() error {
	if w.dead.Load() {
		return ErrCrashed
	}
	if w.closed {
		return ErrClosed
	}
	return nil
}

// Append frames payload into the log and returns the offset to pass to
// WaitDurable. It buffers in user space (bounded by flushThreshold) and
// does not itself fsync; an append is not durable until WaitDurable
// returns for an offset at or past it.
func (w *WAL) Append(payload []byte) (int64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usableLocked(); err != nil {
		return 0, err
	}
	if err := w.pointLocked(PointAppendEnter); err != nil {
		return 0, err
	}
	n := int64(frameHeaderSize + len(payload))
	if w.segSize+n > w.opts.SegmentBytes && w.segSize > headerSize {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.segSize += n
	w.written += n
	end := w.written
	w.m.appends.Inc()
	w.m.appendBytes.Add(n)
	w.m.sizeBytes.Set(float64(w.written))
	w.m.backlog.Set(float64(end - w.synced.Load()))
	if len(w.buf) >= flushThreshold {
		if err := w.flushLocked(); err != nil {
			return 0, err
		}
	}
	if err := w.pointLocked(PointAppendFramed); err != nil {
		return 0, err
	}
	return end, nil
}

// flushLocked drains the user-space buffer to the active segment file.
func (w *WAL) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.buf = w.buf[:0]
	return nil
}

// rotateLocked seals the active segment (flush + fsync, so a sealed
// segment is always fully durable) and opens the next one.
func (w *WAL) rotateLocked() error {
	if err := w.pointLocked(PointRotate); err != nil {
		return err
	}
	if err := w.flushLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	w.m.fsyncs.Inc()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Every byte written so far is now durable, whatever the policy.
	w.storeSyncedMax(w.written)
	return w.openSegmentLocked(w.seq + 1)
}

func (w *WAL) storeSyncedMax(v int64) {
	for {
		cur := w.synced.Load()
		if v <= cur || w.synced.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WaitDurable blocks until offset end (from Append) is durable under the
// configured policy. Under SyncAlways it group-commits: the caller that
// wins the sync lock flushes and fsyncs everything appended so far, and
// callers whose offset that covered return without another fsync.
func (w *WAL) WaitDurable(end int64) error {
	if w.dead.Load() {
		return ErrCrashed
	}
	if w.opts.Sync != SyncAlways {
		return nil
	}
	if w.synced.Load() >= end {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= end {
		return nil
	}
	return w.syncNow()
}

// Sync forces a flush + fsync of everything appended so far (any policy).
func (w *WAL) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncNow()
}

// syncNow flushes and fsyncs; callers hold syncMu.
func (w *WAL) syncNow() error {
	w.mu.Lock()
	if err := w.usableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	target := w.written
	f := w.f
	w.mu.Unlock()

	start := time.Now()
	if err := f.Sync(); err != nil {
		// A concurrent Append can rotate between the unlock above and
		// this Sync: rotation flushes, fsyncs and closes the captured
		// file, so Sync on it fails ("file already closed") even though
		// every byte up to target just became durable. The watermark
		// rotation stores tells the two apart — only propagate the error
		// if target is genuinely not durable.
		if w.synced.Load() >= target {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	w.m.fsyncs.Inc()
	w.m.fsyncSec.Observe(time.Since(start).Seconds())
	if err := w.point(PointSynced); err != nil {
		// Crash between fsync and acknowledgment: the bytes are durable
		// but no writer learns it — the double-apply hazard dedup covers.
		return err
	}
	w.storeSyncedMax(target)
	w.m.backlog.Set(float64(w.writtenNow() - w.synced.Load()))
	return nil
}

func (w *WAL) writtenNow() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// BacklogBytes reports appended-but-not-yet-durable bytes — the
// backpressure signal for ingest admission control.
func (w *WAL) BacklogBytes() int64 {
	return w.writtenNow() - w.synced.Load()
}

// SizeBytes reports total live log bytes (headers included).
func (w *WAL) SizeBytes() int64 { return w.writtenNow() }

// Segments reports the number of live segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segCount
}

func (w *WAL) tickLoop() {
	defer close(w.tickDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.tickStop:
			return
		case <-t.C:
			if err := w.Sync(); err != nil {
				if errors.Is(err, ErrClosed) || errors.Is(err, ErrCrashed) {
					return
				}
			}
		}
	}
}

// Close flushes, fsyncs and closes the log. Safe to call twice.
func (w *WAL) Close() error {
	if w.tickStop != nil {
		select {
		case <-w.tickStop:
		default:
			close(w.tickStop)
		}
		<-w.tickDone
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.dead.Load() {
		return nil // a crashed log already dropped its buffer and file
	}
	if err := w.flushLocked(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.storeSyncedMax(w.written)
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
