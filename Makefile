GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-submit gate: static checks plus the race detector on
# the concurrency-bearing packages (the parallel training engine, the
# singleflight HTTP layer and the experiment fan-out).
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/serve/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
